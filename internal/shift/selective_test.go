package shift_test

// Soundness suite for selective instrumentation (Options.Selective):
// a selectively instrumented build must be *verdict-equivalent* to the
// fully instrumented one — same traps (by kind), same alerts, same
// outputs, same exit status, and a bit-identical region-0 tag bitmap —
// across every Fig-7 workload and every Table-2 attack, benign and
// exploit, under both run-time checkers (the lockstep oracle and the
// decoupled tag pipeline). The oracle's shadow models full Figure-5
// semantics, so running it over a selective build re-validates every
// skip at run time: an unsound skip surfaces as a TrapOracle
// divergence. The mutation suite below injects exactly such unsound
// skips and proves each one is caught.

import (
	"fmt"
	"regexp"
	"testing"

	"shift/internal/attacks"
	"shift/internal/instrument"
	"shift/internal/isa"
	"shift/internal/machine"
	"shift/internal/policy"
	"shift/internal/shift"
	"shift/internal/staticcheck"
	"shift/internal/staticcheck/reach"
	"shift/internal/taint"
	"shift/internal/workload"
)

// stripPCs erases program counters from an alert detail: full and
// selective builds are different instruction streams, so the same
// violation fires at different PCs by construction. Everything else in
// the alert (policy, address, sink data) must still match exactly.
var pcPattern = regexp.MustCompile(`pc=[0-9]+`)

func stripPCs(s string) string { return pcPattern.ReplaceAllString(s, "pc=?") }

// tagDigest hashes the run's region-0 tag bitmap.
func tagDigest(r *shift.Result) uint64 {
	if r.World == nil || r.World.Tags == nil {
		return 0
	}
	return r.World.Tags.Mem.RegionDigest(0)
}

// compareVerdicts checks verdict equivalence between a full and a
// selective run of the same sources. The two programs differ
// instruction-by-instruction, so cycle counts, PCs and machine state are
// out of scope — everything observable about the *verdict* is in:
// trap kind, alert detail, exit status, every output stream, the sink
// logs, and the final tag bitmap.
func compareVerdicts(t *testing.T, label string, ref, got *shift.Result) {
	t.Helper()
	if (ref.Trap == nil) != (got.Trap == nil) {
		t.Fatalf("%s: trap mismatch: full=%v selective=%v", label, ref.Trap, got.Trap)
	}
	if ref.Trap != nil && ref.Trap.Kind != got.Trap.Kind {
		t.Fatalf("%s: trap kind mismatch: full=%v selective=%v", label, ref.Trap, got.Trap)
	}
	if (ref.Alert == nil) != (got.Alert == nil) {
		t.Fatalf("%s: alert mismatch: full=%v selective=%v", label, ref.Alert, got.Alert)
	}
	if ref.Alert != nil && stripPCs(ref.Alert.String()) != stripPCs(got.Alert.String()) {
		t.Fatalf("%s: alert detail mismatch:\n full:      %v\n selective: %v", label, ref.Alert, got.Alert)
	}
	if ref.ExitStatus != got.ExitStatus {
		t.Errorf("%s: exit status: full=%d selective=%d", label, ref.ExitStatus, got.ExitStatus)
	}
	if string(ref.World.Stdout) != string(got.World.Stdout) {
		t.Errorf("%s: stdout differs:\n full:      %q\n selective: %q",
			label, ref.World.Stdout, got.World.Stdout)
	}
	if string(ref.World.NetOut) != string(got.World.NetOut) {
		t.Errorf("%s: network output differs", label)
	}
	if string(ref.World.HTMLOut) != string(got.World.HTMLOut) {
		t.Errorf("%s: html output differs", label)
	}
	if fmt.Sprint(ref.World.SQLLog) != fmt.Sprint(got.World.SQLLog) {
		t.Errorf("%s: SQL log differs", label)
	}
	if fmt.Sprint(ref.World.Opened) != fmt.Sprint(got.World.Opened) {
		t.Errorf("%s: opened-files log differs", label)
	}
	if rd, gd := tagDigest(ref), tagDigest(got); rd != gd {
		t.Errorf("%s: region-0 tag digest differs: full=%#x selective=%#x", label, rd, gd)
	}
}

// fullVsSelective builds the sources fully and selectively instrumented,
// runs the full build under the lockstep oracle (the trusted reference),
// then runs the selective build twice — once under the oracle, once
// under the decoupled tag pipeline — and demands verdict equivalence
// and checker silence every time.
func fullVsSelective(t *testing.T, label string, sources []shift.Source,
	world func() *shift.World, opt shift.Options) (*shift.Result, instrument.Stats) {
	t.Helper()
	opt.Instrument = true

	full, err := shift.Build(sources, opt)
	if err != nil {
		t.Fatalf("%s: full build: %v", label, err)
	}
	var stats instrument.Stats
	sopt := opt
	sopt.Selective = true
	sopt.InstrStats = &stats
	sel, err := shift.Build(sources, sopt)
	if err != nil {
		t.Fatalf("%s: selective build: %v", label, err)
	}
	if len(sel.Text) > len(full.Text) {
		t.Errorf("%s: selective build is larger than full (%d > %d instructions)",
			label, len(sel.Text), len(full.Text))
	}

	opt.Oracle, opt.Decoupled = true, 0
	ref, err := shift.Run(full, world(), opt)
	if err != nil {
		t.Fatalf("%s: full run: %v", label, err)
	}
	gotO, err := shift.Run(sel, world(), opt)
	if err != nil {
		t.Fatalf("%s: selective oracle run: %v", label, err)
	}
	if gotO.Trap != nil && gotO.Trap.Kind == machine.TrapOracle {
		t.Fatalf("%s: oracle diverged on the selective build: %v", label, gotO.Trap)
	}
	compareVerdicts(t, label+"/oracle", ref, gotO)

	opt.Oracle, opt.Decoupled = false, 2
	gotP, err := shift.Run(sel, world(), opt)
	if err != nil {
		t.Fatalf("%s: selective tagpipe run: %v", label, err)
	}
	if gotP.Pipe == nil {
		t.Fatalf("%s: tagpipe run has no pipeline", label)
	}
	if d := gotP.Pipe.Divergence(); d != nil {
		t.Fatalf("%s: tag pipeline diverged on the selective build: %v", label, d)
	}
	compareVerdicts(t, label+"/tagpipe", ref, gotP)
	return ref, stats
}

// TestSelectiveWorkloads sweeps the Figure 7 benchmarks at both
// granularities: selective and full builds must be verdict-equivalent
// under both checkers, and across the suite the analysis must actually
// skip sites (the whole point) without ever skipping everything.
func TestSelectiveWorkloads(t *testing.T) {
	slow := map[string]bool{"vpr": true, "twolf": true, "mcf": true}
	var skipped, kept int
	for _, b := range workload.All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			if testing.Short() && slow[b.Name] {
				t.Skip("fixed-iteration kernel; covered by the non-short run")
			}
			sc := b.RefScale / 8
			if sc < 64 {
				sc = 64
			}
			grans := []taint.Granularity{taint.Byte, taint.Word}
			if testing.Short() {
				grans = grans[:1]
			}
			for _, g := range grans {
				conf := b.Config()
				conf.Granularity = g
				label := fmt.Sprintf("%s/%v", b.Name, g)
				sources := []shift.Source{{Name: b.Name + ".mc", Text: b.Source}}
				ref, stats := fullVsSelective(t, label, sources,
					func() *shift.World { return b.World(sc) }, shift.Options{Policy: conf})
				if ref.Trap != nil || ref.Alert != nil {
					t.Fatalf("%s: benchmark not clean: trap=%v alert=%v", label, ref.Trap, ref.Alert)
				}
				if stats.Sites == 0 || stats.Kept == 0 {
					t.Errorf("%s: implausible site accounting: %+v", label, stats)
				}
				skipped += stats.Skipped
				kept += stats.Kept
			}
		})
	}
	if skipped == 0 {
		t.Errorf("selective instrumentation skipped no sites across the whole workload suite")
	}
	t.Logf("suite totals: kept=%d skipped=%d", kept, skipped)
}

// TestSelectiveAttacks runs every Table 2 attack benign and exploit:
// detection verdicts — including alert details — must be identical
// between full and selective builds under both checkers. Zero missed
// detections is the acceptance criterion.
func TestSelectiveAttacks(t *testing.T) {
	grans := []taint.Granularity{taint.Byte, taint.Word}
	if testing.Short() {
		grans = grans[:1]
	}
	for _, a := range attacks.All() {
		a := a
		t.Run(a.Program, func(t *testing.T) {
			for _, gran := range grans {
				conf := a.Config()
				conf.Granularity = gran
				opt := shift.Options{Policy: conf}
				sources := []shift.Source{{Name: a.Program, Text: a.Source}}

				fullVsSelective(t, fmt.Sprintf("benign/%v", gran), sources, a.Benign, opt)
				ref, _ := fullVsSelective(t, fmt.Sprintf("exploit/%v", gran), sources, a.Exploit, opt)
				if ref.Alert == nil && a.Expect != "" {
					t.Errorf("%v: exploit raised no alert (expected %s)", gran, a.Expect)
				}
			}
		})
	}
}

// mutationSource is a program in which taint provably flows through
// every load, store and compare in main's loop body: recv taints buf,
// the loop loads it, copies it, and branches on it. Every kept site in
// main is therefore *dynamically* exercised with tainted data, so an
// injected unsound skip must produce an observable divergence.
const mutationSource = `
char buf[32];
char out[32];
int hits;

void main() {
	int n = recv(buf, 16);
	int i;
	for (i = 0; i < n; i++) {
		int c = buf[i];
		out[i] = c;
		if (c == 'A') {
			hits = hits + 1;
		}
	}
	print_int(hits);
	putc('\n');
	exit(0);
}
`

// mainRange returns main's [start, end) index range in prog: from its
// entry to the next non-local function symbol.
func mainRange(t *testing.T, prog *isa.Program) (int, int) {
	t.Helper()
	start, ok := prog.Symbols["main"]
	if !ok {
		t.Fatal("no main symbol")
	}
	end := len(prog.Text)
	for name, idx := range prog.Symbols {
		if idx > start && idx < end && name[0] != '.' {
			end = idx
		}
	}
	return start, end
}

// TestSelectiveMutationSuite injects unsound skips — dropping the
// instrumentation of one reachable, dynamically tainted site at a time
// — and proves every single one is caught: statically by the contract
// lint (the skip is *not* analysis-sanctioned, so staticcheck flags the
// bare site) and dynamically by the oracle or a verdict divergence.
func TestSelectiveMutationSuite(t *testing.T) {
	conf := policy.DefaultConfig()
	sources := []shift.Source{{Name: "mutation.mc", Text: mutationSource}}
	plain, err := shift.Build(sources, shift.Options{Policy: conf})
	if err != nil {
		t.Fatal(err)
	}
	world := func() *shift.World {
		w := shift.NewWorld()
		w.NetIn = []byte("AABAACADAAEAAFAA")
		return w
	}
	iopt := instrument.Options{Gran: conf.Granularity, Permissive: conf.NoTrack}
	full, err := instrument.Apply(plain, iopt)
	if err != nil {
		t.Fatal(err)
	}
	ropt := shift.Options{Instrument: true, Policy: conf, Oracle: true}
	ref, err := shift.Run(full, world(), ropt)
	if err != nil {
		t.Fatal(err)
	}
	if ref.Trap != nil || ref.ExitStatus != 0 {
		t.Fatalf("full run not clean: trap=%v exit=%d", ref.Trap, ref.ExitStatus)
	}

	// Candidate sites: every load/store/compare in main that the
	// reachability analysis itself says must stay instrumented.
	ra := reach.Analyze(plain, reach.Config{
		Sources: conf.Sources, Gran: conf.Granularity, Permissive: conf.NoTrack,
	})
	start, end := mainRange(t, plain)
	var candidates []int
	for idx := start; idx < end; idx++ {
		ins := &plain.Text[idx]
		if ins.ABI {
			continue
		}
		keep := false
		switch ins.Op {
		case isa.OpLd, isa.OpLdFill:
			keep = ra.InstrumentLoad(idx)
		case isa.OpSt, isa.OpStSpill, isa.OpCmpxchg:
			keep = ra.InstrumentStore(idx)
		case isa.OpCmp, isa.OpCmpi:
			keep = ra.RelaxCompare(idx)
		}
		if keep {
			candidates = append(candidates, idx)
		}
	}
	if len(candidates) < 3 {
		t.Fatalf("implausibly few mutation candidates in main: %d", len(candidates))
	}

	for _, idx := range candidates {
		idx := idx
		t.Run(fmt.Sprintf("skip@%d_%v", idx, plain.Text[idx].Op), func(t *testing.T) {
			mopt := iopt
			mopt.ForceSkip = map[int]bool{idx: true}
			mopt.SkipVerify = true // the gate would (rightly) reject it
			mut, mex, err := instrument.ApplyWithExempt(plain, mopt)
			if err != nil {
				t.Fatal(err)
			}

			// Static net: the bare site must not lint clean without its
			// exemption — the contract checker flags it.
			lintCaught := false
			for _, f := range staticcheck.Check(mut) {
				if mex[f.PC] {
					lintCaught = true
				}
			}

			// Dynamic net: under the oracle the mutated build must trap,
			// or its verdict must visibly diverge from the full build.
			mres, err := shift.Run(mut, world(), ropt)
			if err != nil {
				t.Fatal(err)
			}
			dynCaught := false
			switch {
			case mres.Trap != nil:
				dynCaught = true
			case mres.ExitStatus != ref.ExitStatus:
				dynCaught = true
			case string(mres.World.Stdout) != string(ref.World.Stdout):
				dynCaught = true
			case tagDigest(mres) != tagDigest(ref):
				dynCaught = true
			}

			if !lintCaught && !dynCaught {
				t.Errorf("unsound skip of %v at %d escaped both the contract lint and the run-time checks",
					plain.Text[idx].Op, idx)
			}
			if !lintCaught {
				t.Errorf("contract lint missed the unsanctioned skip at %d", idx)
			}
			if !dynCaught {
				t.Logf("note: skip at %d produced no dynamic divergence on this input (caught by lint)", idx)
			}
		})
	}
}

// TestSelectiveSkipsTaintSparseCode pins the precision side: in a
// program whose taint is confined to one small buffer, the analysis
// must skip the taint-free compute kernel while keeping every site in
// the tainted loop.
func TestSelectiveSkipsTaintSparseCode(t *testing.T) {
	src := `
char buf[16];
int work[64];

void main() {
	int i;
	int acc = 0;
	for (i = 0; i < 64; i++) {
		work[i] = i * 3;
	}
	for (i = 0; i < 64; i++) {
		acc = acc + work[i];
	}
	int n = recv(buf, 8);
	int seen = 0;
	for (i = 0; i < n; i++) {
		if (buf[i] == 'x') {
			seen = seen + 1;
		}
	}
	print_int(acc);
	putc(' ');
	print_int(seen);
	putc('\n');
	exit(0);
}
`
	conf := policy.DefaultConfig()
	var stats instrument.Stats
	opt := shift.Options{Instrument: true, Policy: conf, Selective: true, InstrStats: &stats}
	prog, err := shift.Build([]shift.Source{{Name: "sparse.mc", Text: src}}, opt)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Skipped == 0 {
		t.Fatalf("taint-sparse program had no skipped sites: %+v", stats)
	}
	if stats.Kept == 0 {
		t.Fatalf("tainted loop lost its instrumentation: %+v", stats)
	}
	t.Logf("taint-sparse accounting: %+v", stats)

	w := shift.NewWorld()
	w.NetIn = []byte("axbxcxdx")
	opt.Oracle = true
	res, err := shift.Run(prog, w, opt)
	if err != nil {
		t.Fatal(err)
	}
	if res.Trap != nil || res.ExitStatus != 0 {
		t.Fatalf("sparse run not clean: trap=%v exit=%d", res.Trap, res.ExitStatus)
	}
	if got := string(res.World.Stdout); got != "6048 4\n" {
		t.Errorf("stdout = %q, want %q", got, "6048 4\n")
	}
}
