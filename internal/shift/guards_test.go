package shift

import (
	"strings"
	"testing"

	"shift/internal/machine"
)

// The §3.3.3 user-level guard tests: with UserGuards, a tainted critical
// use is intercepted by a chk.s branch to a generated handler instead of
// a hardware NaT-consumption fault — same verdict, different delivery.

const taintedExitProg = `
void main() {
	char b[8];
	recv(b, 8);
	exit(b[0]);        // tainted scalar syscall argument
}
`

func TestUserGuardsCatchTaintedSyscallArg(t *testing.T) {
	world := NewWorld()
	world.NetIn = []byte("X")
	res, err := BuildAndRun([]Source{{Name: "t", Text: taintedExitProg}}, world,
		Options{Instrument: true, UserGuards: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Alert == nil {
		t.Fatalf("no alert; trap=%v", res.Trap)
	}
	if res.Alert.Violation.Policy != "L3" {
		t.Errorf("policy = %s, want L3", res.Alert.Violation.Policy)
	}
	if !strings.Contains(res.Alert.Violation.Detail, "user-level") {
		t.Errorf("detail does not credit the user-level handler: %q", res.Alert.Violation.Detail)
	}
	// The guard fires before the syscall: no hardware NaT fault occurred.
	if res.Alert.Trap.Kind != machine.TrapHostError {
		t.Errorf("delivered via %v, want the handler's host path", res.Alert.Trap.Kind)
	}
}

func TestWithoutGuardsHardwareFaultDelivers(t *testing.T) {
	world := NewWorld()
	world.NetIn = []byte("X")
	res, err := BuildAndRun([]Source{{Name: "t", Text: taintedExitProg}}, world,
		Options{Instrument: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Alert == nil || res.Alert.Violation.Policy != "L3" {
		t.Fatalf("want hardware L3, got alert=%v trap=%v", res.Alert, res.Trap)
	}
	if res.Alert.Trap.Kind != machine.TrapNaTSyscall {
		t.Errorf("delivered via %v, want the NaT-consumption fault", res.Alert.Trap.Kind)
	}
}

func TestUserGuardsQuietOnCleanRuns(t *testing.T) {
	src := `
void main() {
	char b[16];
	int n = recv(b, 16);
	write(1, b, n);     // content tainted, but every scalar arg clean
	exit(n > 0 ? 0 : 1);
}
`
	world := NewWorld()
	world.NetIn = []byte("hello")
	res, err := BuildAndRun([]Source{{Name: "t", Text: src}}, world,
		Options{Instrument: true, UserGuards: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Alert != nil || res.Trap != nil {
		t.Fatalf("clean run raised: alert=%v trap=%v", res.Alert, res.Trap)
	}
	if string(res.World.Stdout) != "hello" {
		t.Errorf("stdout = %q", res.World.Stdout)
	}
}

func TestUserGuardsCatchTaintedBranchTarget(t *testing.T) {
	// Build a guarded program whose tainted value reaches a branch
	// register via a hand-wired machine state; easier: minic cannot
	// produce indirect branches, so drive the guard through the exit
	// path of a helper returning tainted data.
	src := `
int pass(int v) { return v; }
void main() {
	char b[8];
	recv(b, 8);
	exit(pass(b[0]));
}
`
	world := NewWorld()
	world.NetIn = []byte{7}
	res, err := BuildAndRun([]Source{{Name: "t", Text: src}}, world,
		Options{Instrument: true, UserGuards: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Alert == nil || !strings.Contains(res.Alert.Violation.Detail, "user-level") {
		t.Fatalf("guard did not intercept: alert=%v trap=%v", res.Alert, res.Trap)
	}
}
