package shift

import (
	"testing"

	"shift/internal/taint"
)

// FuzzDecoupledLockstep explores (program seed, tainted input,
// granularity, worker count, lag-window size) with BOTH checkers live in
// one run: the inline oracle cross-checks every retired instruction
// while the decoupled pipeline re-propagates the same stream
// asynchronously and re-checks at sinks. Tiny windows (down to one
// record per segment) force constant producer stalls and drains, so the
// ring's backpressure and the commit ordering are under fuzz along with
// the taint semantics. Any trap, alert, or divergence from either
// checker is a finding.
func FuzzDecoupledLockstep(f *testing.F) {
	f.Add(int64(1), []byte("tainted input bytes"), false, uint8(2), uint8(0))
	f.Add(int64(7), []byte{0xff, 0x00, 0x80, 0x7f}, true, uint8(4), uint8(1))
	f.Add(int64(42), []byte("0123456789abcdef0123456789abcdef"), false, uint8(1), uint8(9))
	f.Fuzz(func(t *testing.T, seed int64, input []byte, word bool, workers, window uint8) {
		if len(input) == 0 {
			input = []byte{1}
		}
		if len(input) > 64 {
			input = input[:64]
		}
		g := taint.Byte
		if word {
			g = taint.Word
		}
		src := generate(seed)
		world := NewWorld()
		world.NetIn = input
		res, err := BuildAndRun([]Source{{Name: "fuzz.mc", Text: src}}, world, Options{
			Instrument:      true,
			Granularity:     g,
			Oracle:          true,
			Decoupled:       1 + int(workers)%4,
			DecoupledWindow: 1 + int(window)%64,
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.Trap != nil {
			t.Fatalf("seed %d gran=%v: %v\n%s", seed, g, res.Trap, src)
		}
		if res.Alert != nil {
			t.Fatalf("seed %d gran=%v: false positive: %v\n%s", seed, g, res.Alert, src)
		}
		if res.Oracle.Stats.UnitChecks == 0 {
			t.Fatalf("seed %d gran=%v: oracle idle", seed, g)
		}
		if res.Pipe.Stats.Records.Load() == 0 {
			t.Fatalf("seed %d gran=%v: pipeline idle", seed, g)
		}
		if res.Pipe.Divergence() != nil {
			t.Fatalf("seed %d gran=%v: pipeline divergence: %v\n%s", seed, g, res.Pipe.Divergence(), src)
		}
	})
}
