// Package shift is the public façade of the SHIFT reproduction: build a
// minic program with or without taint instrumentation, run it under a
// policy engine, and collect performance accounting and security alerts.
//
// The division of labour follows the paper's thesis (§3): the machine and
// instrumentation provide the *mechanism* (NaT-bit propagation in
// registers, a bitmap in memory), while policies are pure software — a
// configuration of taint sources and sink checks that can change without
// touching the tracking machinery.
package shift

import (
	"fmt"

	"shift/internal/asm"
	"shift/internal/codegen"
	"shift/internal/forensics"
	"shift/internal/instrument"
	"shift/internal/isa"
	"shift/internal/lang"
	"shift/internal/loader"
	"shift/internal/machine"
	"shift/internal/metrics"
	"shift/internal/oracle"
	"shift/internal/policy"
	"shift/internal/rtlib"
	"shift/internal/tagpipe"
	"shift/internal/taint"
	"shift/internal/trace"
)

// Source is one minic translation unit.
type Source struct {
	Name string
	Text string
}

// Options selects how a program is built and run.
type Options struct {
	// Instrument enables the SHIFT pass; false builds the baseline.
	Instrument bool
	// Granularity is byte- or word-level tracking (default byte).
	Granularity taint.Granularity
	// Features enables the paper's proposed enhancement instructions on
	// both the pass and the machine.
	Features machine.Features
	// Policy configures sources, sinks and granularity overrides; nil
	// uses policy.DefaultConfig when instrumenting.
	Policy *policy.Config
	// NaTPerFunction selects the §4.4 ablation (regenerate the NaT
	// source at every function entry).
	NaTPerFunction bool
	// NaTPerUse regenerates the NaT source at every tainting site
	// (the ablation's expensive extreme).
	NaTPerUse bool
	// Optimize enables the §4.4/§6.4 future-work compiler
	// optimizations (kept mask register, tag-address reuse).
	Optimize bool
	// UserGuards inserts §3.3.3 chk.s checks before critical uses so
	// violations are handled at user level instead of by a hardware
	// fault.
	UserGuards bool
	// SerializedTags makes byte-level bitmap updates atomic via a
	// cmpxchg retry loop, closing the §4.4 multi-threading hazard.
	SerializedTags bool
	// UnsafePreempt lets the scheduler end a time slice between a data
	// store and its tag update (machine.Machine.UnsafePreempt), exposing
	// the §4.4 bitmap hazard the default tag-coherent scheduling closes.
	// With Oracle set, the strong cross-checks stand down at the first
	// spawn in this mode, as they would otherwise flag the hazard itself.
	UnsafePreempt bool
	// NoRuntime skips linking the runtime library (for tests that
	// provide their own primitives).
	NoRuntime bool
	// Budget bounds retired instructions (0 = machine default).
	Budget uint64
	// Quantum is the scheduler time slice in cycles for multi-threaded
	// guests (0 = machine.DefaultQuantum). Single-threaded programs are
	// unaffected.
	Quantum uint64
	// Profile counts retirements per instruction on the main thread
	// (inspect via Result.Machine.Hotspots / FunctionProfile).
	Profile bool
	// Oracle runs a lockstep reference DIFT engine alongside execution,
	// cross-checking register NaT bits and the tag bitmap against plain
	// shadow-taint interpretation. A disagreement stops the run with a
	// TrapOracle carrying a full divergence report (Result.Trap).
	Oracle bool
	// Decoupled, when > 0, runs the decoupled tag pipeline with that many
	// shadow-propagation workers: tag state is maintained asynchronously
	// over a retirement log and every policy sink drains the log before
	// its verdict. Verdicts are equivalent to the inline oracle's; the
	// strong cross-checks run at sink granularity instead of at every
	// original-instruction boundary (see DESIGN.md "Decoupled tag
	// pipeline"). Composable with Oracle for differential testing.
	Decoupled int
	// DecoupledWindow overrides the pipeline's per-segment record count
	// (the lag window is 64 segments × this; 0 = default 256). Exposed
	// for the fuzz harness, which shrinks it to force stalls and drains.
	DecoupledWindow int
	// Costs overrides the cycle cost model (nil = machine defaults).
	Costs *machine.Costs
	// Engine selects the execution engine: the translated-block engine
	// (default) or the reference interpreter. The engines are
	// bit-identical in every architectural observable; interp exists as
	// the oracle's ground truth and for differential testing.
	Engine machine.Engine
	// Trace, when non-nil, records taint-lifecycle events into the given
	// flight recorder: both the OS-boundary events (taint birth, policy
	// checks, violations, spawns) and the per-retirement propagation
	// events a machine hook derives (spec-load defers, NaT sets, tag-
	// bitmap writes, chk.s recoveries, slices, syscall latency).
	Trace *trace.Tracer
	// Metrics, when non-nil, receives the run's aggregate instruments
	// (tag-op counts, TLB/cache hit rates, slice occupancy, syscall
	// latency histograms). Independent of Trace; either may be set alone.
	Metrics *metrics.Registry
	// Selective makes the instrumentation pass run the whole-program
	// taint-reachability analysis (internal/staticcheck/reach) and leave
	// provably taint-unreachable sites uninstrumented. The analysis'
	// taint seeds follow the policy's Sources channels, so a selective
	// build is specific to its policy configuration.
	Selective bool
	// InstrStats, when non-nil, receives the instrumentation pass' site
	// accounting (total / kept / skipped) from Build.
	InstrStats *instrument.Stats
}

// Build parses, checks, compiles and (optionally) instruments sources
// together with the runtime library.
func Build(sources []Source, opt Options) (*isa.Program, error) {
	var files []*lang.File
	if !opt.NoRuntime {
		rt, err := lang.Parse("rtlib.mc", rtlib.Source)
		if err != nil {
			return nil, fmt.Errorf("shift: runtime library: %w", err)
		}
		files = append(files, rt)
	}
	for _, s := range sources {
		f, err := lang.Parse(s.Name, s.Text)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	unit, err := lang.Check(files...)
	if err != nil {
		return nil, err
	}
	prog, err := codegen.Compile(unit)
	if err != nil {
		return nil, err
	}
	return instrumentProg(prog, opt)
}

// BuildAsm assembles one hand-written assembly unit and (optionally)
// instruments it under the same options as Build. It exists for
// scenarios written below minic's level — the attack corpus'
// speculative-leak gadget needs ld.s/chk.s sequences minic never emits.
func BuildAsm(name, text string, opt Options) (*isa.Program, error) {
	prog, err := asm.Assemble(text, asm.Options{})
	if err != nil {
		return nil, fmt.Errorf("shift: %s: %w", name, err)
	}
	return instrumentProg(prog, opt)
}

// instrumentProg applies the SHIFT pass per the run options (the shared
// tail of Build and BuildAsm).
func instrumentProg(prog *isa.Program, opt Options) (*isa.Program, error) {
	if !opt.Instrument {
		return prog, nil
	}
	conf := opt.Policy
	if conf == nil {
		conf = policy.DefaultConfig()
	}
	gran := opt.Granularity
	if opt.Policy != nil {
		gran = conf.Granularity
	}
	return instrument.Apply(prog, instrument.Options{
		Gran:             gran,
		Feat:             opt.Features,
		NaTPerFunction:   opt.NaTPerFunction,
		NaTPerUse:        opt.NaTPerUse,
		Optimize:         opt.Optimize,
		UserGuards:       opt.UserGuards,
		SerializedTags:   opt.SerializedTags,
		Permissive:       conf.NoTrack,
		Selective:        opt.Selective,
		SelectiveSources: conf.Sources,
		Stats:            opt.InstrStats,
	})
}

// Alert is a detected policy violation.
type Alert struct {
	Violation *policy.Violation
	Trap      *machine.Trap // underlying hardware fault, if any
}

// String renders the alert.
func (a *Alert) String() string {
	if a.Violation != nil {
		return a.Violation.Error()
	}
	return a.Trap.Error()
}

// Result collects everything a run produced.
type Result struct {
	ExitStatus int64
	Alert      *Alert        // non-nil when a policy violation stopped the run
	Trap       *machine.Trap // non-nil on a non-policy trap (a real bug)

	Cycles        uint64
	CyclesByClass [isa.NumCostClasses]uint64
	Retired       uint64
	World         *World
	Machine       *machine.Machine
	// Oracle is the lockstep checker when Options.Oracle was set; its
	// Divergence() and Stats report what was cross-checked.
	Oracle *oracle.Oracle
	// Pipe is the decoupled tag pipeline when Options.Decoupled was set;
	// its Divergence() and Stats report what was propagated and checked.
	Pipe *tagpipe.Pipeline
	// Trace is the flight recorder when Options.Trace was set.
	Trace *trace.Tracer
}

// Report assembles the forensic incident bundle for the run's alert:
// attack signature, token provenance against the world's input channels,
// and the flight recorder's tail when the run was traced. Nil when the
// run raised no alert.
func (r *Result) Report() *forensics.Report {
	if r.Alert == nil || r.Alert.Violation == nil {
		return nil
	}
	w := r.World
	return forensics.BuildReport(r.Alert.Violation, forensics.Channels{
		Network: w.NetIn,
		Stdin:   w.Stdin,
		Args:    w.Args,
		Files:   w.Files,
	}, r.Trace, 0)
}

// Run loads and executes a program against a world. When opt.Instrument
// is set the world is wired with a tag space and policy engine; taints
// flow from the world's sources and violations surface as alerts.
func Run(prog *isa.Program, world *World, opt Options) (*Result, error) {
	img, err := loader.Load(prog)
	if err != nil {
		return nil, err
	}
	if world == nil {
		world = NewWorld()
	}
	world.HeapBase = img.HeapBase
	world.StackTop = img.StackTop
	return RunOn(img.NewMachine(), world, opt)
}

// RunOn executes world on an already-constructed machine: the full Run
// wiring — tag space, policy engine, oracle, decoupled tag pipeline,
// observability hooks, scheduler — applied to a machine the caller
// built. This is the reuse seam for pooled guests (internal/pool):
// a recycled machine restored from a snapshot re-enters here for each
// request instead of paying loader.Load again. The caller owns the
// pieces Run normally derives from the loader image: world.HeapBase
// and world.StackTop must be set, and a pre-created world.Tags /
// world.Engine are kept (so a pool can Clear one tag space across
// runs); when nil and opt.Instrument is set, fresh ones are created
// over mach.Mem.
func RunOn(mach *machine.Machine, world *World, opt Options) (*Result, error) {
	if world == nil {
		world = NewWorld()
	}
	conf := opt.Policy
	if conf == nil {
		conf = policy.DefaultConfig()
	}
	if opt.Instrument {
		gran := opt.Granularity
		if opt.Policy != nil {
			gran = conf.Granularity
		}
		if world.Tags == nil {
			world.Tags = taint.NewSpace(mach.Mem, gran)
		}
		if world.Engine == nil {
			world.Engine = policy.NewEngine(conf)
		}
	}

	mach.OS = world
	mach.Engine = opt.Engine
	mach.Feat = opt.Features
	mach.Budget = opt.Budget
	mach.UnsafePreempt = opt.UnsafePreempt
	if opt.Profile {
		mach.EnableProfile()
	}
	if opt.Costs != nil {
		mach.Costs = *opt.Costs
	}

	var orc *oracle.Oracle
	if opt.Oracle {
		orc = oracle.New(oracle.Config{Tags: world.Tags, Instrumented: opt.Instrument, UnsafePreempt: opt.UnsafePreempt})
		orc.Attach(mach)
		world.Effects = orc
	}

	// The decoupled tag pipeline rides the same seams as the oracle: the
	// StepHook retirement stream feeds its ring, and the host-effect
	// notifications become its synchronous sink drains. With both engines
	// requested the oracle hooks first, keeping its at-the-instruction
	// abort semantics; the pipeline then sees exactly the same stream.
	var pipe *tagpipe.Pipeline
	if opt.Decoupled > 0 {
		pipe = tagpipe.New(tagpipe.Config{
			Tags:          world.Tags,
			Instrumented:  opt.Instrument,
			UnsafePreempt: opt.UnsafePreempt,
			Workers:       opt.Decoupled,
			SegRecords:    opt.DecoupledWindow,
		})
		defer pipe.Close()
		if mach.Hook != nil {
			mach.Hook = machine.MultiHook{mach.Hook, pipe}
		} else {
			pipe.Attach(mach)
		}
		if world.Effects != nil {
			world.Effects = multiEffects{world.Effects, pipe}
		} else {
			world.Effects = pipe
		}
	}

	// Observability rides the same StepHook seam as the oracle; with both
	// requested, MultiHook fans the retirement stream out (oracle first,
	// so its abort-on-divergence semantics are unchanged).
	var obs *trace.MachineHook
	if opt.Trace != nil || opt.Metrics != nil {
		obs = trace.NewMachineHook(opt.Trace, opt.Metrics)
		if mach.Hook != nil {
			mach.Hook = machine.MultiHook{mach.Hook, obs}
		} else {
			mach.Hook = obs
		}
		world.Trace = opt.Trace
	}
	if opt.Metrics != nil && pipe != nil {
		s := &pipe.Stats
		opt.Metrics.GaugeFunc("shift_tagpipe_records_total", func() uint64 { return s.Records.Load() })
		opt.Metrics.GaugeFunc("shift_tagpipe_segments_total", func() uint64 { return s.Segments.Load() })
		opt.Metrics.GaugeFunc("shift_tagpipe_stalls_total", func() uint64 { return s.Stalls.Load() })
		opt.Metrics.GaugeFunc("shift_tagpipe_drains_total", func() uint64 { return s.Drains.Load() })
		opt.Metrics.GaugeFunc("shift_tagpipe_lag_records", pipe.Lag)
	}
	if opt.Metrics != nil {
		m := mach.Mem
		opt.Metrics.GaugeFunc("shift_tlb_hits", func() uint64 { h, _ := m.TLBStats(); return h })
		opt.Metrics.GaugeFunc("shift_tlb_misses", func() uint64 { _, ms := m.TLBStats(); return ms })
		if c := m.Cache; c != nil {
			opt.Metrics.GaugeFunc("shift_cache_hits", func() uint64 { return c.Hits })
			opt.Metrics.GaugeFunc("shift_cache_misses", func() uint64 { return c.Misses })
		}
	}

	sched := machine.NewScheduler(mach)
	sched.Quantum = opt.Quantum
	world.Sched = sched
	if opt.Metrics != nil {
		// Translation-cache traffic, summed across guest threads (threads
		// share the main thread's cache, but hit/miss counts are
		// per-machine).
		sumBlocks := func(f func(*machine.BlockStats) uint64) func() uint64 {
			return func() uint64 {
				var total uint64
				for _, th := range sched.Threads {
					total += f(&th.BlockStats)
				}
				return total
			}
		}
		opt.Metrics.GaugeFunc("shift_blocks_compiled", sumBlocks(func(s *machine.BlockStats) uint64 { return s.Compiled }))
		opt.Metrics.GaugeFunc("shift_block_cache_hits", sumBlocks(func(s *machine.BlockStats) uint64 { return s.Hits }))
		opt.Metrics.GaugeFunc("shift_block_cache_misses", sumBlocks(func(s *machine.BlockStats) uint64 { return s.Misses }))
		opt.Metrics.GaugeFunc("shift_block_invalidations", sumBlocks(func(s *machine.BlockStats) uint64 { return s.Invalidations }))
		opt.Metrics.GaugeFunc("shift_block_cache_evictions", machine.TranslationEvictions)
	}

	trap := sched.Run()
	if obs != nil {
		obs.Flush()
	}
	if trap == nil && orc != nil {
		// The run halted cleanly: the final state must still agree.
		if err := orc.Finish(mach); err != nil {
			trap = &machine.Trap{Kind: machine.TrapOracle, PC: mach.PC, Ins: "<finish>", Err: err}
		}
	}
	if trap == nil && pipe != nil {
		// Same final agreement for the decoupled engine: drain the ring
		// and run the closing register/bitmap sweeps.
		if err := pipe.Finish(mach); err != nil {
			trap = &machine.Trap{Kind: machine.TrapOracle, PC: mach.PC, Ins: "<finish>", Err: err}
		}
	}
	res := &Result{
		ExitStatus: mach.ExitStatus,
		Cycles:     sched.TotalCycles(),
		Retired:    sched.TotalRetired(),
		World:      world,
		Machine:    mach,
		Oracle:     orc,
		Pipe:       pipe,
		Trace:      opt.Trace,
	}
	for _, th := range sched.Threads {
		for i, c := range th.CyclesByClass {
			res.CyclesByClass[i] += c
		}
	}
	if trap == nil {
		return res, nil
	}

	// Policy violations come back two ways: sink checks raise a host
	// trap wrapping a Violation; NaT-consumption faults classify via the
	// engine (L1–L3).
	if v, ok := trap.Err.(*policy.Violation); ok {
		res.Alert = &Alert{Violation: v, Trap: trap}
		return res, nil
	}
	if trap.Kind.IsNaTConsumption() && world.Engine != nil {
		if v := world.Engine.ClassifyTrap(trap, world.liveChannels()); v != nil {
			// Hardware-detected (L1–L3) violations bypass the syscall
			// sink path, so the trace event is recorded here.
			opt.Trace.Emit(trace.Event{Cycle: mach.Cycles, TID: mach.TID, PC: trap.PC, Kind: trace.KindViolation, Name: v.Policy})
			res.Alert = &Alert{Violation: v, Trap: trap}
			return res, nil
		}
	}
	res.Trap = trap
	return res, nil
}

// BuildAndRun is the one-call convenience used by examples and tests.
func BuildAndRun(sources []Source, world *World, opt Options) (*Result, error) {
	if opt.Selective && opt.Metrics != nil && opt.InstrStats == nil {
		opt.InstrStats = new(instrument.Stats)
	}
	prog, err := Build(sources, opt)
	if err != nil {
		return nil, err
	}
	if opt.Selective && opt.Metrics != nil {
		RegisterSelectiveMetrics(opt.Metrics, opt.InstrStats)
	}
	return Run(prog, world, opt)
}

// RegisterSelectiveMetrics publishes a selective build's site accounting
// on reg: shift_selective_sites_kept / shift_selective_sites_skipped.
func RegisterSelectiveMetrics(reg *metrics.Registry, st *instrument.Stats) {
	if reg == nil || st == nil {
		return
	}
	reg.Gauge("shift_selective_sites_kept").Set(uint64(st.Kept))
	reg.Gauge("shift_selective_sites_skipped").Set(uint64(st.Skipped))
}
