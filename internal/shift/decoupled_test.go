package shift_test

// Differential suite for the decoupled tag pipeline: every workload,
// attack and threaded schedule runs once under the inline lockstep
// oracle and once under the asynchronous pipeline, and the two runs must
// agree on every observable — traps, alerts, output, exit status, cycle
// accounting, machine state, and the taint bitmap. Verdict equivalence
// is the pipeline's acceptance criterion (DESIGN.md "Decoupled tag
// pipeline"); the -race CI stage runs this file too, covering the
// producer/worker/committer handoffs.

import (
	"fmt"
	"testing"

	"shift/internal/attacks"
	"shift/internal/shift"
	"shift/internal/taint"
	"shift/internal/workload"
)

// inlineVsDecoupled runs the same build under the inline oracle and
// under the decoupled pipeline with fresh worlds.
func inlineVsDecoupled(t *testing.T, label string, sources []shift.Source,
	world func() *shift.World, opt shift.Options, workers int) (*shift.Result, *shift.Result) {
	t.Helper()
	prog, err := shift.Build(sources, opt)
	if err != nil {
		t.Fatalf("%s: build: %v", label, err)
	}
	opt.Oracle, opt.Decoupled = true, 0
	ref, err := shift.Run(prog, world(), opt)
	if err != nil {
		t.Fatalf("%s: inline-oracle run: %v", label, err)
	}
	opt.Oracle, opt.Decoupled = false, workers
	got, err := shift.Run(prog, world(), opt)
	if err != nil {
		t.Fatalf("%s: decoupled run: %v", label, err)
	}
	if got.Pipe == nil {
		t.Fatalf("%s: decoupled run has no pipeline", label)
	}
	if got.Pipe.Stats.Records.Load() == 0 {
		t.Fatalf("%s: pipeline idle: no retirement records flowed", label)
	}
	return ref, got
}

// TestDecoupledWorkloads sweeps the Figure 7 benchmarks: inline and
// decoupled verdicts and observables must agree in every mode, at one
// and several workers (one worker is the raw-record reference path, more
// engage the symbolic summaries).
func TestDecoupledWorkloads(t *testing.T) {
	modes := []struct {
		name string
		opt  func(b *workload.Benchmark) shift.Options
	}{
		{"base", func(b *workload.Benchmark) shift.Options {
			return shift.Options{Policy: b.Config()}
		}},
		{"byte", func(b *workload.Benchmark) shift.Options {
			conf := b.Config()
			conf.Granularity = taint.Byte
			return shift.Options{Instrument: true, Policy: conf}
		}},
		{"word", func(b *workload.Benchmark) shift.Options {
			conf := b.Config()
			conf.Granularity = taint.Word
			return shift.Options{Instrument: true, Policy: conf}
		}},
	}
	slow := map[string]bool{"vpr": true, "twolf": true, "mcf": true}
	for _, b := range workload.All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			if testing.Short() && slow[b.Name] {
				t.Skip("fixed-iteration kernel; covered by the non-short run")
			}
			sc := b.RefScale / 8
			if sc < 64 {
				sc = 64
			}
			workers := []int{1, 3}
			if testing.Short() {
				workers = workers[1:]
			}
			for _, m := range modes {
				for _, n := range workers {
					sources := []shift.Source{{Name: b.Name + ".mc", Text: b.Source}}
					label := fmt.Sprintf("%s/%s/w=%d", b.Name, m.name, n)
					ref, got := inlineVsDecoupled(t, label, sources,
						func() *shift.World { return b.World(sc) }, m.opt(b), n)
					if ref.Trap != nil || ref.Alert != nil {
						t.Fatalf("%s: benchmark not clean: trap=%v alert=%v", label, ref.Trap, ref.Alert)
					}
					compareResults(t, label, ref, got)
					if m.name != "base" && got.Pipe.Stats.Sweeps.Load() == 0 {
						t.Errorf("%s: no sink sweeps ran in an instrumented run", label)
					}
				}
			}
		})
	}
}

// TestDecoupledAttacks runs every Table 2 attack's benign and exploit
// inputs: detections and alert details must be identical between the
// inline oracle and the pipeline at both granularities.
func TestDecoupledAttacks(t *testing.T) {
	grans := []taint.Granularity{taint.Byte, taint.Word}
	if testing.Short() {
		grans = grans[:1]
	}
	for _, a := range attacks.All() {
		a := a
		t.Run(a.Program, func(t *testing.T) {
			for _, gran := range grans {
				conf := a.Config()
				conf.Granularity = gran
				opt := shift.Options{Instrument: true, Policy: conf}
				sources := []shift.Source{{Name: a.Program, Text: a.Source}}

				ref, got := inlineVsDecoupled(t, "benign", sources, a.Benign, opt, 2)
				compareResults(t, fmt.Sprintf("%s/benign/%v", a.Program, gran), ref, got)

				ref, got = inlineVsDecoupled(t, "exploit", sources, a.Exploit, opt, 2)
				compareResults(t, fmt.Sprintf("%s/exploit/%v", a.Program, gran), ref, got)
				if ref.Alert == nil && a.Expect != "" {
					t.Errorf("%v: exploit raised no alert (expected %s)", gran, a.Expect)
				}
			}
		})
	}
}

// TestDecoupledThreads drives the threaded schedule grid: multithreaded
// guests under small quanta, instrumented and not, plus the
// UnsafePreempt stand-down — all must be verdict-identical.
func TestDecoupledThreads(t *testing.T) {
	src := `
char log[128];
int pos;
int done[4];

int worker(int id) {
	int i;
	int acc = 0;
	for (i = 0; i < 12; i++) {
		log[pos] = 'a' + id;
		pos++;
		acc += i * id;
		yield();
	}
	done[id] = acc;
	return acc;
}

void main() {
	int t1 = spawn("worker", 1);
	int t2 = spawn("worker", 2);
	int t3 = spawn("worker", 3);
	if (t1 < 0 || t2 < 0 || t3 < 0) exit(9);
	join(t1);
	join(t2);
	join(t3);
	log[pos] = 0;
	print_str(log);
	print_int(done[1] + done[2] + done[3]);
	putc('\n');
	exit(0);
}
`
	for _, quantum := range []uint64{1, 7, 23, 50} {
		for _, instrument := range []bool{false, true} {
			label := fmt.Sprintf("q=%d/instrument=%v", quantum, instrument)
			opt := shift.Options{Instrument: instrument, Quantum: quantum}
			sources := []shift.Source{{Name: "threads.mc", Text: src}}
			ref, got := inlineVsDecoupled(t, label, sources, shift.NewWorld, opt, 2)
			if ref.Trap != nil || ref.ExitStatus != 0 {
				t.Fatalf("%s: inline run not clean: trap=%v exit=%d", label, ref.Trap, ref.ExitStatus)
			}
			compareResults(t, label, ref, got)
		}
	}
	// UnsafePreempt: both checkers stand their strong checks down at the
	// first spawn; the runs must still agree on all observables.
	opt := shift.Options{Instrument: true, Quantum: 7, UnsafePreempt: true}
	sources := []shift.Source{{Name: "threads.mc", Text: src}}
	ref, got := inlineVsDecoupled(t, "unsafe-preempt", sources, shift.NewWorld, opt, 2)
	compareResults(t, "unsafe-preempt", ref, got)
}

// TestDecoupledComposesWithOracle runs both checkers in the same run:
// the oracle hooks first (inline abort semantics), the pipeline rides
// behind over the same stream and host effects fan out to both. A clean
// workload must stay clean and agree with the oracle-only run.
func TestDecoupledComposesWithOracle(t *testing.T) {
	b := workload.All()[0]
	sc := b.RefScale / 8
	if sc < 64 {
		sc = 64
	}
	conf := b.Config()
	conf.Granularity = taint.Byte
	opt := shift.Options{Instrument: true, Policy: conf, Oracle: true}
	sources := []shift.Source{{Name: b.Name + ".mc", Text: b.Source}}
	prog, err := shift.Build(sources, opt)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := shift.Run(prog, b.World(sc), opt)
	if err != nil {
		t.Fatal(err)
	}
	opt.Decoupled = 2
	got, err := shift.Run(prog, b.World(sc), opt)
	if err != nil {
		t.Fatal(err)
	}
	if got.Oracle == nil || got.Pipe == nil {
		t.Fatal("combined run missing a checker")
	}
	compareResults(t, "oracle+pipe", ref, got)
	if got.Pipe.Divergence() != nil {
		t.Fatalf("pipeline diverged where the oracle did not: %v", got.Pipe.Divergence())
	}
}
