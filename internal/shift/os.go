package shift

import (
	"fmt"

	"shift/internal/isa"
	"shift/internal/machine"
	"shift/internal/policy"
	"shift/internal/taint"
	"shift/internal/trace"
)

// IOCosts models the cycle cost of moving bytes across the OS boundary.
// The evaluation's Apache result (Figure 6) depends on I/O dominating
// request service time, so the defaults are deliberately disk/NIC-like.
type IOCosts struct {
	PerByte uint64 // cycles per byte moved by read/write/recv/send
	PerOpen uint64 // extra cycles per open
}

// DefaultIOCosts returns the model used in the evaluation.
func DefaultIOCosts() IOCosts { return IOCosts{PerByte: 6, PerOpen: 2000} }

// file is one open descriptor.
type file struct {
	path string
	off  int
}

// HostEffects observes the OS model's direct mutations of guest state —
// the ones that happen outside the instrumented instruction stream and
// would otherwise be invisible to a lockstep checker. The oracle package
// implements it; a nil Effects field disables all notifications.
type HostEffects interface {
	// HostWrite reports n bytes of host data written at addr (read,
	// recv, getarg transfers).
	HostWrite(addr uint64, n int)
	// HostTaint reports that [addr, addr+n) was marked as a source.
	HostTaint(addr, n uint64)
	// HostUntaint reports that [addr, addr+n) was explicitly cleared.
	HostUntaint(addr, n uint64)
	// OnSpawn reports a new guest thread created by parentTID.
	OnSpawn(parentTID, childTID int)
}

// SinkSyncer is the optional extension an asynchronous checker (the
// decoupled tag pipeline) implements: a policy sink is about to render a
// verdict, so any in-flight shadow propagation must be drained first and
// any divergence it exposed must preempt the verdict. The inline oracle
// doesn't need it — it is never behind.
type SinkSyncer interface {
	SyncSink(m *machine.Machine, sink string) error
}

// multiEffects fans host-effect notifications out to several observers
// (oracle and pipeline together, for differential runs). SyncSink
// delegates to every member that implements it.
type multiEffects []HostEffects

func (me multiEffects) HostWrite(addr uint64, n int) {
	for _, e := range me {
		e.HostWrite(addr, n)
	}
}

func (me multiEffects) HostTaint(addr, n uint64) {
	for _, e := range me {
		e.HostTaint(addr, n)
	}
}

func (me multiEffects) HostUntaint(addr, n uint64) {
	for _, e := range me {
		e.HostUntaint(addr, n)
	}
}

func (me multiEffects) OnSpawn(parentTID, childTID int) {
	for _, e := range me {
		e.OnSpawn(parentTID, childTID)
	}
}

func (me multiEffects) SyncSink(m *machine.Machine, sink string) error {
	for _, e := range me {
		if s, ok := e.(SinkSyncer); ok {
			if err := s.SyncSink(m, sink); err != nil {
				return err
			}
		}
	}
	return nil
}

// syncSink drains asynchronous checkers before a sink verdict; a
// divergence surfaced by the drain preempts the verdict as a TrapOracle.
func (w *World) syncSink(m *machine.Machine, sink string) *machine.Trap {
	s, ok := w.Effects.(SinkSyncer)
	if !ok {
		return nil
	}
	if err := s.SyncSink(m, sink); err != nil {
		return &machine.Trap{Kind: machine.TrapOracle, PC: m.PC, Ins: "syscall", Err: err}
	}
	return nil
}

// World is the OS model: files, the network, program arguments, output
// channels, the heap break — and, when tracking is on, the taint sources
// (§3.3.1) and policy sinks (Table 1).
type World struct {
	// Inputs.
	Files map[string][]byte
	NetIn []byte
	Stdin []byte
	Args  []string

	// Outputs.
	Stdout  []byte
	NetOut  []byte
	HTMLOut []byte
	SQLLog  []string
	SysLog  []string
	Opened  []string

	// Tags is the taint bitmap; nil disables all taint marking (the
	// uninstrumented baseline).
	Tags *taint.Space
	// Engine checks policies at sinks; nil disables checking.
	Engine *policy.Engine
	// Effects, when non-nil, is notified of host-side guest-state
	// mutations (for the lockstep oracle).
	Effects HostEffects
	// Trace, when non-nil, records taint-lifecycle events the OS model
	// originates: taint birth at input syscalls, host writes, policy
	// checks and violations, spawns. Run wires it from Options.Trace.
	Trace *trace.Tracer

	IO IOCosts

	// HeapBase seeds the sbrk break; the loader supplies it.
	HeapBase uint64
	// Sched and StackTop wire up guest threading (spawn/join/yield);
	// Run establishes them.
	Sched    *machine.Scheduler
	StackTop uint64

	brk      uint64
	netOff   int
	stdinOff int
	fds      []*file
}

// NewWorld returns an empty world with default I/O costs.
func NewWorld() *World {
	return &World{Files: make(map[string][]byte), IO: DefaultIOCosts()}
}

// Clone returns a fresh world with the same inputs and configuration but
// reset consumption state and outputs — for running the same workload
// repeatedly.
func (w *World) Clone() *World {
	nw := NewWorld()
	for k, v := range w.Files {
		nw.Files[k] = v
	}
	nw.NetIn = w.NetIn
	nw.Stdin = w.Stdin
	nw.Args = w.Args
	nw.IO = w.IO
	nw.HeapBase = w.HeapBase
	return nw
}

func (w *World) source(name string) bool {
	return w.Engine != nil && w.Engine.Conf.Sources[name]
}

// emit records one trace event stamped with the calling machine's clock,
// thread and pc. A nil Trace makes it a no-op.
func (w *World) emit(m *machine.Machine, ev trace.Event) {
	if w.Trace == nil {
		return
	}
	ev.Cycle, ev.TID, ev.PC = m.Cycles, m.TID, m.PC
	w.Trace.Emit(ev)
}

// markTaint taints guest memory [addr, addr+n) when tracking is enabled
// and the channel is an untrusted source.
func (w *World) markTaint(m *machine.Machine, addr uint64, n int, channel string) error {
	if w.Tags == nil || n <= 0 || !w.source(channel) {
		return nil
	}
	if err := w.Tags.SetRangeFrom(addr, uint64(n), taint.ChannelForSource(channel)); err != nil {
		return err
	}
	if w.Effects != nil {
		w.Effects.HostTaint(addr, uint64(n))
	}
	// Taint birth: the event every later provenance question traces back
	// to, so it carries the source channel by name.
	w.emit(m, trace.Event{Kind: trace.KindTaint, Addr: addr, N: uint64(n), Name: channel})
	return nil
}

// notifyWrite reports a host data transfer into guest memory.
func (w *World) notifyWrite(m *machine.Machine, addr uint64, n int) {
	if n <= 0 {
		return
	}
	if w.Effects != nil {
		w.Effects.HostWrite(addr, n)
	}
	w.emit(m, trace.Event{Kind: trace.KindHostWrite, Addr: addr, N: uint64(n)})
}

// checkSink records the policy check (and, when v is non-nil, the
// violation) in the trace and converts the violation to a trap. Callers
// invoke it only when an Engine is installed — a recorded policy-check
// event means a check actually ran.
func (w *World) checkSink(m *machine.Machine, sink string, v *policy.Violation) *machine.Trap {
	// A sink verdict is a synchronization point for asynchronous shadow
	// propagation: drain before rendering, and let a divergence the drain
	// exposes preempt the verdict.
	if t := w.syncSink(m, sink); t != nil {
		return t
	}
	w.emit(m, trace.Event{Kind: trace.KindPolicyCheck, Name: sink})
	if v == nil {
		return nil
	}
	w.emit(m, trace.Event{Kind: trace.KindViolation, Name: v.Policy})
	return violationTrap(m, v)
}

// hostTrap wraps an internal error.
func hostTrap(m *machine.Machine, err error) *machine.Trap {
	return &machine.Trap{Kind: machine.TrapHostError, PC: m.PC, Ins: "syscall", Err: err}
}

// violationTrap surfaces a policy violation as a trap that Run converts
// into an Alert.
func violationTrap(m *machine.Machine, v *policy.Violation) *machine.Trap {
	return &machine.Trap{Kind: machine.TrapHostError, PC: m.PC, Ins: "syscall", Err: v}
}

// taintedBytes reads per-byte taint for a guest buffer; without tracking
// it returns all-clean.
func (w *World) taintedBytes(addr uint64, n int) ([]bool, error) {
	if w.Tags == nil {
		return make([]bool, n), nil
	}
	return w.Tags.TaintedBytes(addr, n)
}

// channelBytes reads per-byte birth channels for a guest buffer, feeding
// the policy engine's per-channel rule keying. Without tracking (or on a
// read error, which taintedBytes will surface) it returns nil, which the
// checks treat as "no provenance info".
func (w *World) channelBytes(addr uint64, n int) []taint.Channel {
	if w.Tags == nil {
		return nil
	}
	cb, err := w.Tags.ChannelBytes(addr, n)
	if err != nil {
		return nil
	}
	return cb
}

// liveChannels is the union of taint birth channels live in the space,
// the provenance signal available to NaT-consumption trap classification
// (register tokens themselves carry only the one NaT bit).
func (w *World) liveChannels() taint.Channel {
	if w.Tags == nil {
		return 0
	}
	return w.Tags.Live()
}

// maxIOTransfer caps a single read/write/recv/send/html_write transfer.
const maxIOTransfer = 1 << 20

// ioCount validates a guest-supplied byte count. A negative count used
// to flow through bare int(n) conversions: it bypassed the available-
// data cap (the comparison count > avail is false for negative counts),
// echoed garbage through r8, turned into a huge uint64 cycle charge, and
// on the output paths made the host allocate a negative-length buffer.
// Malformed counts now fail the syscall with -1 instead.
func ioCount(n int64) (int, bool) {
	if n < 0 || n > maxIOTransfer {
		return 0, false
	}
	return int(n), true
}

// failCount sets the EINVAL-style result for a rejected transfer count.
func failCount(m *machine.Machine) (uint64, *machine.Trap) {
	m.GR[isa.RegRet] = -1
	m.NaT[isa.RegRet] = false
	return 0, nil
}

// arg fetches syscall argument i, faulting on a tainted scalar: tainted
// data may not reach the kernel interface through registers (the syscall
// half of policy L3).
func arg(m *machine.Machine, i int) (int64, *machine.Trap) {
	r := uint8(isa.RegArg0 + i)
	if m.NaT[r] {
		return 0, &machine.Trap{Kind: machine.TrapNaTSyscall, PC: m.PC, Reg: r, Ins: "syscall"}
	}
	return m.GR[r], nil
}

// Syscall implements machine.SyscallHandler.
func (w *World) Syscall(m *machine.Machine, num int64) (uint64, *machine.Trap) {
	switch num {
	case isa.SysExit:
		status, trap := arg(m, 0)
		if trap != nil {
			return 0, trap
		}
		m.Halt(status)
		return 0, nil

	case isa.SysRead:
		return w.sysRead(m)
	case isa.SysWrite:
		return w.sysWrite(m)
	case isa.SysOpen:
		return w.sysOpen(m)
	case isa.SysRecv:
		return w.sysRecv(m)
	case isa.SysSend:
		return w.sysSend(m)
	case isa.SysSqlExec:
		return w.sysSQL(m)
	case isa.SysSystem:
		return w.sysSystem(m)
	case isa.SysHTMLWrite:
		return w.sysHTML(m)

	case isa.SysSbrk:
		n, trap := arg(m, 0)
		if trap != nil {
			return 0, trap
		}
		if w.brk == 0 {
			w.brk = w.HeapBase
		}
		old := w.brk
		w.brk += uint64((n + 15) &^ 15)
		m.GR[isa.RegRet] = int64(old)
		m.NaT[isa.RegRet] = false
		return 0, nil

	case isa.SysTaint, isa.SysUntaint, isa.SysIsTainted:
		return w.sysTaintOps(m, num)

	case isa.SysGetArg:
		return w.sysGetArg(m)

	case isa.SysPutc:
		c, trap := arg(m, 0)
		if trap != nil {
			return 0, trap
		}
		w.Stdout = append(w.Stdout, byte(c))
		return 1, nil

	case isa.SysSpawn:
		return w.sysSpawn(m)

	case isa.SysJoin:
		tid, trap := arg(m, 0)
		if trap != nil {
			return 0, trap
		}
		if w.Sched == nil || !w.Sched.Join(m.TID, int(tid)) {
			m.GR[isa.RegRet] = -1
		} else {
			m.GR[isa.RegRet] = 0
			m.YieldReq = true
		}
		m.NaT[isa.RegRet] = false
		return 0, nil

	case isa.SysYield:
		m.YieldReq = true
		return 0, nil

	case isa.SysUserAlert:
		// A §3.3.3 user-level guard (chk.s before a critical use)
		// caught a taint token and transferred control here instead of
		// taking a hardware fault.
		if t := w.syncSink(m, "user_alert"); t != nil {
			return 0, t
		}
		v := &policy.Violation{
			Policy: "L3",
			Detail: fmt.Sprintf("user-level chk.s handler caught tainted critical data (pc=%d)", m.PC),
		}
		if w.Engine != nil {
			w.Engine.Alerts = append(w.Engine.Alerts, v)
		}
		w.emit(m, trace.Event{Kind: trace.KindViolation, Name: v.Policy})
		return 0, violationTrap(m, v)
	}
	return 0, hostTrap(m, fmt.Errorf("unknown syscall %d", num))
}

// threadStackSlice separates per-thread stacks inside region 2.
const threadStackSlice = 1 << 20

// maxThreads bounds spawned threads so stacks stay inside the region.
const maxThreads = 15

func (w *World) sysSpawn(m *machine.Machine) (uint64, *machine.Trap) {
	namePtr, trap := arg(m, 0)
	if trap != nil {
		return 0, trap
	}
	threadArg, trap := arg(m, 1)
	if trap != nil {
		return 0, trap
	}
	if w.Sched == nil {
		return 0, hostTrap(m, fmt.Errorf("spawn: no scheduler installed"))
	}
	name, f := m.Mem.ReadCString(uint64(namePtr), 256)
	if f != nil {
		return 0, hostTrap(m, f)
	}
	entry, ok := m.Prog.Symbols[name]
	if !ok || len(w.Sched.Threads) >= maxThreads {
		m.GR[isa.RegRet] = -1
		m.NaT[isa.RegRet] = false
		return 0, nil
	}
	sp := w.StackTop - uint64(len(w.Sched.Threads))*threadStackSlice
	tid := w.Sched.Spawn(entry, threadArg, sp)
	if w.Effects != nil {
		w.Effects.OnSpawn(m.TID, tid)
	}
	w.emit(m, trace.Event{Kind: trace.KindSpawn, N: uint64(tid), Name: name})
	m.GR[isa.RegRet] = int64(tid)
	m.NaT[isa.RegRet] = false
	return 0, nil
}

func (w *World) sysRead(m *machine.Machine) (uint64, *machine.Trap) {
	fd, trap := arg(m, 0)
	if trap != nil {
		return 0, trap
	}
	buf, trap := arg(m, 1)
	if trap != nil {
		return 0, trap
	}
	n, trap := arg(m, 2)
	if trap != nil {
		return 0, trap
	}
	var src []byte
	var off *int
	channel := "file"
	switch {
	case fd == 0:
		src, off, channel = w.Stdin, &w.stdinOff, "stdin"
	case fd >= 3 && int(fd-3) < len(w.fds) && w.fds[fd-3] != nil:
		f := w.fds[fd-3]
		src, off = w.Files[f.path], &f.off
	default:
		m.GR[isa.RegRet] = -1
		m.NaT[isa.RegRet] = false
		return 0, nil
	}
	count, ok := ioCount(n)
	if !ok {
		return failCount(m)
	}
	avail := len(src) - *off
	if avail < 0 {
		avail = 0
	}
	if count > avail {
		count = avail
	}
	if count > 0 {
		if f := m.Mem.WriteBytes(uint64(buf), src[*off:*off+count]); f != nil {
			return 0, hostTrap(m, f)
		}
		*off += count
		w.notifyWrite(m, uint64(buf), count)
		if err := w.markTaint(m, uint64(buf), count, channel); err != nil {
			return 0, hostTrap(m, err)
		}
	}
	m.GR[isa.RegRet] = int64(count)
	m.NaT[isa.RegRet] = false
	return uint64(count) * w.IO.PerByte, nil
}

func (w *World) sysWrite(m *machine.Machine) (uint64, *machine.Trap) {
	_, trap := arg(m, 0)
	if trap != nil {
		return 0, trap
	}
	buf, trap := arg(m, 1)
	if trap != nil {
		return 0, trap
	}
	n, trap := arg(m, 2)
	if trap != nil {
		return 0, trap
	}
	count, ok := ioCount(n)
	if !ok {
		return failCount(m)
	}
	b, f := m.Mem.ReadBytes(uint64(buf), count)
	if f != nil {
		return 0, hostTrap(m, f)
	}
	w.Stdout = append(w.Stdout, b...)
	m.GR[isa.RegRet] = int64(count)
	m.NaT[isa.RegRet] = false
	return uint64(count) * w.IO.PerByte, nil
}

func (w *World) sysOpen(m *machine.Machine) (uint64, *machine.Trap) {
	pathPtr, trap := arg(m, 0)
	if trap != nil {
		return 0, trap
	}
	if _, t := arg(m, 1); t != nil { // flags
		return 0, t
	}
	path, f := m.Mem.ReadCString(uint64(pathPtr), 4096)
	if f != nil {
		return 0, hostTrap(m, f)
	}
	w.Opened = append(w.Opened, path)
	if w.Engine != nil {
		tb, err := w.taintedBytes(uint64(pathPtr), len(path))
		if err != nil {
			return 0, hostTrap(m, err)
		}
		if trap := w.checkSink(m, "open", w.Engine.CheckOpen(path, tb, w.channelBytes(uint64(pathPtr), len(path)))); trap != nil {
			return 0, trap
		}
	}
	if _, ok := w.Files[path]; !ok {
		m.GR[isa.RegRet] = -1
		m.NaT[isa.RegRet] = false
		return w.IO.PerOpen, nil
	}
	w.fds = append(w.fds, &file{path: path})
	m.GR[isa.RegRet] = int64(len(w.fds) - 1 + 3)
	m.NaT[isa.RegRet] = false
	return w.IO.PerOpen, nil
}

func (w *World) sysRecv(m *machine.Machine) (uint64, *machine.Trap) {
	buf, trap := arg(m, 0)
	if trap != nil {
		return 0, trap
	}
	n, trap := arg(m, 1)
	if trap != nil {
		return 0, trap
	}
	count, ok := ioCount(n)
	if !ok {
		return failCount(m)
	}
	avail := len(w.NetIn) - w.netOff
	if count > avail {
		count = avail
	}
	if count > 0 {
		if f := m.Mem.WriteBytes(uint64(buf), w.NetIn[w.netOff:w.netOff+count]); f != nil {
			return 0, hostTrap(m, f)
		}
		w.netOff += count
		w.notifyWrite(m, uint64(buf), count)
		if err := w.markTaint(m, uint64(buf), count, "network"); err != nil {
			return 0, hostTrap(m, err)
		}
	}
	m.GR[isa.RegRet] = int64(count)
	m.NaT[isa.RegRet] = false
	return uint64(count) * w.IO.PerByte, nil
}

func (w *World) sysSend(m *machine.Machine) (uint64, *machine.Trap) {
	buf, trap := arg(m, 0)
	if trap != nil {
		return 0, trap
	}
	n, trap := arg(m, 1)
	if trap != nil {
		return 0, trap
	}
	count, ok := ioCount(n)
	if !ok {
		return failCount(m)
	}
	b, f := m.Mem.ReadBytes(uint64(buf), count)
	if f != nil {
		return 0, hostTrap(m, f)
	}
	w.NetOut = append(w.NetOut, b...)
	m.GR[isa.RegRet] = int64(count)
	m.NaT[isa.RegRet] = false
	return uint64(count) * w.IO.PerByte, nil
}

func (w *World) sysSQL(m *machine.Machine) (uint64, *machine.Trap) {
	qPtr, trap := arg(m, 0)
	if trap != nil {
		return 0, trap
	}
	q, f := m.Mem.ReadCString(uint64(qPtr), 65536)
	if f != nil {
		return 0, hostTrap(m, f)
	}
	w.SQLLog = append(w.SQLLog, q)
	if w.Engine != nil {
		tb, err := w.taintedBytes(uint64(qPtr), len(q))
		if err != nil {
			return 0, hostTrap(m, err)
		}
		if trap := w.checkSink(m, "sql", w.Engine.CheckSQL(q, tb, w.channelBytes(uint64(qPtr), len(q)))); trap != nil {
			return 0, trap
		}
	}
	m.GR[isa.RegRet] = 0
	m.NaT[isa.RegRet] = false
	return uint64(len(q)), nil
}

func (w *World) sysSystem(m *machine.Machine) (uint64, *machine.Trap) {
	cPtr, trap := arg(m, 0)
	if trap != nil {
		return 0, trap
	}
	cmd, f := m.Mem.ReadCString(uint64(cPtr), 65536)
	if f != nil {
		return 0, hostTrap(m, f)
	}
	w.SysLog = append(w.SysLog, cmd)
	if w.Engine != nil {
		tb, err := w.taintedBytes(uint64(cPtr), len(cmd))
		if err != nil {
			return 0, hostTrap(m, err)
		}
		if trap := w.checkSink(m, "system", w.Engine.CheckSystem(cmd, tb, w.channelBytes(uint64(cPtr), len(cmd)))); trap != nil {
			return 0, trap
		}
	}
	m.GR[isa.RegRet] = 0
	m.NaT[isa.RegRet] = false
	return uint64(len(cmd)), nil
}

func (w *World) sysHTML(m *machine.Machine) (uint64, *machine.Trap) {
	buf, trap := arg(m, 0)
	if trap != nil {
		return 0, trap
	}
	n, trap := arg(m, 1)
	if trap != nil {
		return 0, trap
	}
	count, ok := ioCount(n)
	if !ok {
		return failCount(m)
	}
	b, f := m.Mem.ReadBytes(uint64(buf), count)
	if f != nil {
		return 0, hostTrap(m, f)
	}
	if w.Engine != nil {
		tb, err := w.taintedBytes(uint64(buf), count)
		if err != nil {
			return 0, hostTrap(m, err)
		}
		if trap := w.checkSink(m, "html", w.Engine.CheckHTML(b, tb, w.channelBytes(uint64(buf), len(b)))); trap != nil {
			return 0, trap
		}
	}
	w.HTMLOut = append(w.HTMLOut, b...)
	m.GR[isa.RegRet] = int64(count)
	m.NaT[isa.RegRet] = false
	return uint64(count) * w.IO.PerByte, nil
}

func (w *World) sysTaintOps(m *machine.Machine, num int64) (uint64, *machine.Trap) {
	buf, trap := arg(m, 0)
	if trap != nil {
		return 0, trap
	}
	n, trap := arg(m, 1)
	if trap != nil {
		return 0, trap
	}
	switch num {
	case isa.SysTaint:
		if w.Tags != nil {
			if err := w.Tags.SetRange(uint64(buf), uint64(n)); err != nil {
				return 0, hostTrap(m, err)
			}
			if w.Effects != nil && n > 0 {
				w.Effects.HostTaint(uint64(buf), uint64(n))
			}
			w.emit(m, trace.Event{Kind: trace.KindTaint, Addr: uint64(buf), N: uint64(n), Name: "syscall"})
		}
	case isa.SysUntaint:
		if w.Tags != nil {
			if err := w.Tags.ClearRange(uint64(buf), uint64(n)); err != nil {
				return 0, hostTrap(m, err)
			}
			if w.Effects != nil && n > 0 {
				w.Effects.HostUntaint(uint64(buf), uint64(n))
			}
			w.emit(m, trace.Event{Kind: trace.KindUntaint, Addr: uint64(buf), N: uint64(n)})
		}
	case isa.SysIsTainted:
		var res int64
		if w.Tags != nil {
			t, err := w.Tags.Tainted(uint64(buf), uint64(n))
			if err != nil {
				return 0, hostTrap(m, err)
			}
			if t {
				res = 1
			}
		}
		m.GR[isa.RegRet] = res
		m.NaT[isa.RegRet] = false
	}
	return 0, nil
}

func (w *World) sysGetArg(m *machine.Machine) (uint64, *machine.Trap) {
	i, trap := arg(m, 0)
	if trap != nil {
		return 0, trap
	}
	buf, trap := arg(m, 1)
	if trap != nil {
		return 0, trap
	}
	capacity, trap := arg(m, 2)
	if trap != nil {
		return 0, trap
	}
	if i < 0 || int(i) >= len(w.Args) || capacity <= 0 {
		m.GR[isa.RegRet] = -1
		m.NaT[isa.RegRet] = false
		return 0, nil
	}
	s := w.Args[i]
	if int64(len(s)+1) > capacity {
		s = s[:capacity-1]
	}
	if f := m.Mem.WriteBytes(uint64(buf), append([]byte(s), 0)); f != nil {
		return 0, hostTrap(m, f)
	}
	w.notifyWrite(m, uint64(buf), len(s)+1)
	if err := w.markTaint(m, uint64(buf), len(s), "args"); err != nil {
		return 0, hostTrap(m, err)
	}
	m.GR[isa.RegRet] = int64(len(s))
	m.NaT[isa.RegRet] = false
	return 0, nil
}
