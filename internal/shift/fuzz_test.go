package shift

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"shift/internal/machine"
	"shift/internal/taint"
)

// progGen generates random but well-defined minic programs that consume
// tainted input. Two variable pools keep the programs policy-clean: index
// expressions use only control variables (never derived from input), so
// the strict pointer policy cannot fire; value expressions may mix in
// tainted data freely. Division is excluded (no trap source), loops are
// bounded, and every output travels through write()/print_int, so the
// differential check below can compare byte-for-byte behaviour.
type progGen struct {
	rng  *rand.Rand
	sb   strings.Builder
	vals []string // value variables (may be tainted)
	idxs []string // control variables (always clean)
}

func (g *progGen) pick(pool []string) string { return pool[g.rng.Intn(len(pool))] }

// cleanExpr builds an expression over control variables and literals.
func (g *progGen) cleanExpr(depth int) string {
	if depth <= 0 || g.rng.Intn(3) == 0 {
		if g.rng.Intn(2) == 0 {
			return fmt.Sprint(g.rng.Intn(100))
		}
		return g.pick(g.idxs)
	}
	op := []string{"+", "-", "*", "&", "|", "^"}[g.rng.Intn(6)]
	return "(" + g.cleanExpr(depth-1) + " " + op + " " + g.cleanExpr(depth-1) + ")"
}

// valExpr builds an expression that may involve tainted values.
func (g *progGen) valExpr(depth int) string {
	if depth <= 0 || g.rng.Intn(3) == 0 {
		switch g.rng.Intn(4) {
		case 0:
			return fmt.Sprint(g.rng.Intn(1000))
		case 1:
			return g.pick(g.idxs)
		case 2:
			return g.pick(g.vals)
		default:
			return "data[" + g.cleanExpr(1) + " & 63]"
		}
	}
	switch g.rng.Intn(8) {
	case 0:
		return "(" + g.valExpr(depth-1) + " << " + fmt.Sprint(1+g.rng.Intn(3)) + ")"
	case 1:
		return "(" + g.valExpr(depth-1) + " >> " + fmt.Sprint(1+g.rng.Intn(3)) + ")"
	case 2:
		// A comparison used as a value exercises relaxed compares.
		rel := []string{"<", ">", "==", "!=", "<=", ">="}[g.rng.Intn(6)]
		return "(" + g.valExpr(depth-1) + " " + rel + " " + g.valExpr(depth-1) + ")"
	default:
		op := []string{"+", "-", "*", "&", "|", "^"}[g.rng.Intn(6)]
		return "(" + g.valExpr(depth-1) + " " + op + " " + g.valExpr(depth-1) + ")"
	}
}

func (g *progGen) stmt(depth int) {
	switch g.rng.Intn(6) {
	case 0: // value assignment
		fmt.Fprintf(&g.sb, "\t%s = %s;\n", g.pick(g.vals), g.valExpr(2))
	case 1: // array store at a clean index
		fmt.Fprintf(&g.sb, "\tdata[%s & 63] = %s;\n", g.cleanExpr(1), g.valExpr(2))
	case 2: // conditional on possibly-tainted data (relaxed compares)
		if depth > 0 {
			rel := []string{"<", ">", "==", "!="}[g.rng.Intn(4)]
			fmt.Fprintf(&g.sb, "\tif (%s %s %s) {\n", g.valExpr(1), rel, g.valExpr(1))
			g.stmt(depth - 1)
			fmt.Fprintf(&g.sb, "\t} else {\n")
			g.stmt(depth - 1)
			fmt.Fprintf(&g.sb, "\t}\n")
		} else {
			fmt.Fprintf(&g.sb, "\t%s += %s;\n", g.pick(g.vals), g.valExpr(1))
		}
	case 3: // bounded loop over a clean counter, reserved for this loop
		if depth > 0 && len(g.idxs) > 1 {
			c := g.idxs[len(g.idxs)-1]
			g.idxs = g.idxs[:len(g.idxs)-1]
			fmt.Fprintf(&g.sb, "\tfor (%s = 0; %s < %d; %s++) {\n", c, c, 2+g.rng.Intn(10), c)
			g.stmt(depth - 1)
			fmt.Fprintf(&g.sb, "\t}\n")
			g.idxs = append(g.idxs, c)
		} else {
			fmt.Fprintf(&g.sb, "\t%s ^= %s;\n", g.pick(g.vals), g.valExpr(1))
		}
	case 4: // compound ops
		op := []string{"+=", "-=", "^=", "|=", "&="}[g.rng.Intn(5)]
		fmt.Fprintf(&g.sb, "\t%s %s %s;\n", g.pick(g.vals), op, g.valExpr(2))
	default: // char-level traffic through the runtime
		fmt.Fprintf(&g.sb, "\tbuf[%s & 31] = %s;\n", g.cleanExpr(1), g.valExpr(1))
	}
}

// generate returns a complete program.
func generate(seed int64) string {
	g := &progGen{
		rng:  rand.New(rand.NewSource(seed)),
		vals: []string{"v0", "v1", "v2"},
		idxs: []string{"i", "j"},
	}
	g.sb.WriteString("int data[64];\nchar buf[32];\n")
	g.sb.WriteString("void main() {\n")
	g.sb.WriteString("\tchar in[64];\n\tint n = recv(in, 64);\n")
	g.sb.WriteString("\tint i; int j; int v0 = 1; int v1 = 2; int v2 = 3;\n")
	g.sb.WriteString("\tfor (i = 0; i < 64; i++) data[i] = in[i & 63];\n")
	for s := 0; s < 8+g.rng.Intn(8); s++ {
		g.stmt(2)
	}
	// Fold all state into an output the host can diff; the values are
	// tainted, which is fine for write() but not for exit().
	g.sb.WriteString("\tint sum = v0 ^ v1 ^ v2;\n")
	g.sb.WriteString("\tfor (i = 0; i < 64; i++) sum += data[i] * (i + 1);\n")
	g.sb.WriteString("\tfor (i = 0; i < 32; i++) sum ^= buf[i] << (i & 7);\n")
	g.sb.WriteString("\tprint_int(sum); putc('\\n');\n")
	g.sb.WriteString("\texit(0);\n}\n")
	return g.sb.String()
}

// FuzzOracleLockstep is the native-fuzzing face of the differential
// harness: the fuzzer explores (program seed, tainted input, granularity)
// while the lockstep oracle cross-checks every retired instruction. Any
// tag/NaT divergence — or any semantic trap — is a finding.
func FuzzOracleLockstep(f *testing.F) {
	f.Add(int64(1), []byte("tainted input bytes"), false)
	f.Add(int64(7), []byte{0xff, 0x00, 0x80, 0x7f}, true)
	f.Add(int64(42), []byte("0123456789abcdef0123456789abcdef"), false)
	f.Fuzz(func(t *testing.T, seed int64, input []byte, word bool) {
		if len(input) == 0 {
			input = []byte{1}
		}
		if len(input) > 64 {
			input = input[:64]
		}
		g := taint.Byte
		if word {
			g = taint.Word
		}
		src := generate(seed)
		world := NewWorld()
		world.NetIn = input
		res, err := BuildAndRun([]Source{{Name: "fuzz.mc", Text: src}}, world,
			Options{Instrument: true, Granularity: g, Oracle: true})
		if err != nil {
			t.Fatal(err)
		}
		if res.Trap != nil {
			t.Fatalf("seed %d gran=%v: %v\n%s", seed, g, res.Trap, src)
		}
		if res.Alert != nil {
			t.Fatalf("seed %d gran=%v: false positive: %v\n%s", seed, g, res.Alert, src)
		}
		if res.Oracle.Stats.UnitChecks == 0 {
			t.Fatalf("seed %d gran=%v: oracle idle", seed, g)
		}
	})
}

// generateThreaded builds a multi-threaded variant of generate's programs:
// the same statement pool, but split across worker threads that all read
// and write the shared data/buf arrays with yields sprinkled between
// statements, so tag-byte read-modify-writes from different threads
// interleave. Outputs are NOT diffed against a baseline — instrumentation
// changes where slices end and therefore how threads interleave — the
// property under fuzz is that fully checked multithreaded tracking never
// traps, never alerts, and never diverges from the lockstep oracle.
func generateThreaded(seed int64, workers int) string {
	rng := rand.New(rand.NewSource(seed))
	var sb strings.Builder
	sb.WriteString("int data[64];\nchar buf[32];\n")
	for w := 0; w < workers; w++ {
		g := &progGen{
			rng:  rand.New(rand.NewSource(seed + int64(w)*7919)),
			vals: []string{"v0", "v1", "v2"},
			idxs: []string{"i", "j"},
		}
		fmt.Fprintf(&g.sb, "int worker%d(int id) {\n", w)
		g.sb.WriteString("\tint i; int j; int v0 = id; int v1 = 2; int v2 = 3;\n")
		for s := 0; s < 4+g.rng.Intn(6); s++ {
			g.stmt(2)
			g.sb.WriteString("\tyield();\n")
		}
		g.sb.WriteString("\treturn 0;\n}\n")
		sb.WriteString(g.sb.String())
	}
	sb.WriteString("void main() {\n")
	sb.WriteString("\tchar in[64];\n\tint n = recv(in, 64);\n")
	sb.WriteString("\tint i;\n")
	sb.WriteString("\tfor (i = 0; i < 64; i++) data[i] = in[i & 63];\n")
	sb.WriteString("\tint tids[4];\n")
	for w := 0; w < workers; w++ {
		fmt.Fprintf(&sb, "\ttids[%d] = spawn(\"worker%d\", %d);\n", w, w, rng.Intn(8))
	}
	for w := 0; w < workers; w++ {
		fmt.Fprintf(&sb, "\tif (tids[%d] < 0) exit(2);\n\tjoin(tids[%d]);\n", w, w)
	}
	sb.WriteString("\tint sum = 0;\n")
	sb.WriteString("\tfor (i = 0; i < 64; i++) sum += data[i] * (i + 1);\n")
	sb.WriteString("\tfor (i = 0; i < 32; i++) sum ^= buf[i] << (i & 7);\n")
	sb.WriteString("\tprint_int(sum); putc('\\n');\n")
	sb.WriteString("\texit(0);\n}\n")
	return sb.String()
}

// FuzzThreadedTaint explores (program shape, tainted input, granularity,
// worker count, quantum) with the lockstep oracle's full register and
// bitmap cross-checks live across every spawn. Before tag-coherent
// scheduling the oracle had to stand down at the first spawn; now any
// interleaving the fuzzer finds that tears a tag update or desynchronizes
// a NaT bit is a hard finding.
func FuzzThreadedTaint(f *testing.F) {
	f.Add(int64(1), []byte("tainted input bytes"), false, uint8(2), uint8(0))
	f.Add(int64(7), []byte{0xff, 0x00, 0x80, 0x7f}, true, uint8(3), uint8(17))
	f.Add(int64(42), []byte("0123456789abcdef"), false, uint8(1), uint8(5))
	f.Fuzz(func(t *testing.T, seed int64, input []byte, word bool, workers, quantum uint8) {
		if len(input) == 0 {
			input = []byte{1}
		}
		if len(input) > 64 {
			input = input[:64]
		}
		g := taint.Byte
		if word {
			g = taint.Word
		}
		src := generateThreaded(seed, 1+int(workers)%3)
		world := NewWorld()
		world.NetIn = input
		res, err := BuildAndRun([]Source{{Name: "fuzz.mc", Text: src}}, world,
			Options{Instrument: true, Granularity: g, Oracle: true,
				Quantum: uint64(quantum)})
		if err != nil {
			t.Fatal(err)
		}
		if res.Trap != nil {
			t.Fatalf("seed %d gran=%v workers=%d q=%d: %v\n%s",
				seed, g, 1+int(workers)%3, quantum, res.Trap, src)
		}
		if res.Alert != nil {
			t.Fatalf("seed %d gran=%v workers=%d q=%d: false positive: %v\n%s",
				seed, g, 1+int(workers)%3, quantum, res.Alert, src)
		}
		if res.Oracle.Stats.UnitChecks == 0 {
			t.Fatalf("seed %d gran=%v: oracle idle", seed, g)
		}
	})
}

// TestInstrumentationPreservesSemantics is the central differential
// property: for randomly generated programs over tainted input, the
// instrumented runs (byte, word, enhanced, per-function NaT) must produce
// exactly the baseline's output and exit status, with no alerts.
func TestInstrumentationPreservesSemantics(t *testing.T) {
	count := 25
	if testing.Short() {
		count = 6
	}
	modes := []struct {
		name string
		opt  Options
	}{
		{"byte", Options{Instrument: true, Granularity: taint.Byte}},
		{"word", Options{Instrument: true, Granularity: taint.Word}},
		{"byte+enh", Options{Instrument: true, Granularity: taint.Byte,
			Features: machine.Features{SetClrNaT: true, NaTAwareCmp: true}}},
		{"byte+perfn", Options{Instrument: true, Granularity: taint.Byte, NaTPerFunction: true}},
		{"byte+opt", Options{Instrument: true, Granularity: taint.Byte, Optimize: true}},
		{"word+opt", Options{Instrument: true, Granularity: taint.Word, Optimize: true}},
		{"byte+ser", Options{Instrument: true, Granularity: taint.Byte, SerializedTags: true}},
		{"byte+guards", Options{Instrument: true, Granularity: taint.Byte, UserGuards: true}},
	}
	for seed := int64(1); seed <= int64(count); seed++ {
		src := generate(seed)
		input := make([]byte, 64)
		r := rand.New(rand.NewSource(seed * 7919))
		r.Read(input)

		world := NewWorld()
		world.NetIn = input
		base, err := BuildAndRun([]Source{{Name: "fuzz.mc", Text: src}}, world, Options{Oracle: true})
		if err != nil {
			t.Fatalf("seed %d: baseline: %v\n%s", seed, err, src)
		}
		if base.Trap != nil {
			t.Fatalf("seed %d: baseline trap: %v\n%s", seed, base.Trap, src)
		}

		for _, m := range modes {
			world := NewWorld()
			world.NetIn = input
			opt := m.opt
			opt.Oracle = true // lockstep reference check rides along
			res, err := BuildAndRun([]Source{{Name: "fuzz.mc", Text: src}}, world, opt)
			if err != nil {
				t.Fatalf("seed %d %s: %v", seed, m.name, err)
			}
			if res.Trap != nil || res.Alert != nil {
				t.Fatalf("seed %d %s: trap=%v alert=%v\n%s", seed, m.name, res.Trap, res.Alert, src)
			}
			if string(res.World.Stdout) != string(base.World.Stdout) {
				t.Fatalf("seed %d %s: output %q != baseline %q\n%s",
					seed, m.name, res.World.Stdout, base.World.Stdout, src)
			}
			if res.Cycles <= base.Cycles {
				t.Errorf("seed %d %s: instrumentation cost nothing", seed, m.name)
			}
			// The oracle must really have been checking, not idling.
			st := res.Oracle.Stats
			if st.Steps == 0 || st.RegChecks == 0 || st.UnitChecks == 0 {
				t.Fatalf("seed %d %s: oracle idle: %+v", seed, m.name, st)
			}
		}
	}
}
