// Command shiftattack runs the security evaluation standalone (the
// paper's Table 2): every attack at byte and word granularity, verifying
// detection with no false positives and that each exploit succeeds when
// SHIFT is off.
//
// With -signatures it additionally extracts an intrusion-prevention
// signature from each detected high-level attack (the attacker-controlled
// bytes at the violated sink) and shows the input channel they came from.
//
// -list prints the structured attack corpus (add -json for a
// machine-readable listing); -corpus runs the full scenario × checker ×
// granularity detection-precision matrix instead of the Table-2 sweep.
//
// Usage:
//
//	shiftattack [-verbose] [-signatures] [-list [-json]] [-corpus]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	"shift/internal/attacks"
	"shift/internal/bench"
	"shift/internal/forensics"
	"shift/internal/shift"
	"shift/internal/taint"
)

// printSignatures re-runs each exploit and prints the extracted signature
// with its provenance.
func printSignatures() error {
	fmt.Println("\nIntrusion-prevention signatures (attacker-controlled sink bytes):")
	all := append(attacks.All(), attacks.Extensions()...)
	for _, a := range all {
		conf := a.Config()
		conf.Granularity = taint.Byte
		world := a.Exploit()
		res, err := shift.BuildAndRun([]shift.Source{{Name: a.Program, Text: a.Source}},
			world, shift.Options{Instrument: true, Policy: conf})
		if err != nil {
			return err
		}
		if res.Alert == nil {
			fmt.Printf("  %-30s (not detected)\n", a.Program)
			continue
		}
		sig := forensics.FromViolation(res.Alert.Violation)
		if sig == nil {
			fmt.Printf("  %-30s %s (register-level fault: no sink bytes)\n",
				a.Program, res.Alert.Violation.Policy)
			continue
		}
		fmt.Printf("  %-30s %s\n", a.Program, sig)
		for _, p := range forensics.Locate(sig, forensics.Channels{
			Network: world.NetIn, Stdin: world.Stdin, Args: world.Args, Files: world.Files,
		}) {
			fmt.Printf("  %-30s   token %q from %s+%d\n", "", p.Token.Text, p.Channel, p.Offset)
		}
	}
	return nil
}

// listCorpus prints the scenario metadata table, or its JSON form.
func listCorpus(asJSON bool) error {
	metas := make([]attacks.ScenarioMeta, 0, len(attacks.Corpus()))
	for _, s := range attacks.Corpus() {
		metas = append(metas, s.Meta())
	}
	if asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(metas)
	}
	tw := tabwriter.NewWriter(os.Stdout, 2, 8, 2, ' ', 0)
	fmt.Fprintln(tw, "NAME\tTYPE\tEXPECT\tKIND\tCHANNEL\tCVE")
	for _, m := range metas {
		fmt.Fprintf(tw, "%s\t%s\t%s\t%s\t%s\t%s\n", m.Name, m.Type, m.Expect, m.Kind, m.Channel, m.CVE)
	}
	return tw.Flush()
}

// matrixConfigs mirrors the corpus matrix test: every checker
// configuration the corpus must detect under.
func matrixConfigs() []attacks.EvalOptions {
	var out []attacks.EvalOptions
	for _, gran := range []taint.Granularity{taint.Byte, taint.Word} {
		out = append(out,
			attacks.EvalOptions{Gran: gran},
			attacks.EvalOptions{Gran: gran, Oracle: true},
			attacks.EvalOptions{Gran: gran, Decoupled: true},
			attacks.EvalOptions{Gran: gran, Selective: true, Oracle: true},
		)
	}
	return out
}

func optLabel(eo attacks.EvalOptions) string {
	l := eo.Gran.String()
	if eo.Oracle {
		l += "+oracle"
	}
	if eo.Decoupled {
		l += "+tagpipe"
	}
	if eo.Selective {
		l += "+selective"
	}
	return l
}

// runCorpus prints the detection-precision matrix: every scenario at
// every checker configuration, with the exploit verdict (policy and
// path), the benign verdict, and the channel attribution.
func runCorpus() error {
	tw := tabwriter.NewWriter(os.Stdout, 2, 8, 2, ' ', 0)
	fmt.Fprintln(tw, "SCENARIO\tCONFIG\tEXPLOIT\tBENIGN\tCHANNELS\tOK")
	failed := 0
	total := 0
	for _, eo := range matrixConfigs() {
		outs, err := attacks.EvaluateCorpus(eo)
		if err != nil {
			return err
		}
		for _, o := range outs {
			total++
			ok := o.Detected()
			if !ok {
				failed++
			}
			fmt.Fprintf(tw, "%s\t%s\t%s/%s\t%s\t%s\t%v\n",
				o.Scenario.Name, optLabel(eo),
				o.Exploit.Policy, o.Exploit.Kind, o.Benign.Kind,
				o.Exploit.Channels, ok)
		}
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	if failed > 0 {
		return fmt.Errorf("%d/%d corpus evaluations failed", failed, total)
	}
	fmt.Printf("\nall %d corpus evaluations detected, zero false positives\n", total)
	return nil
}

func main() {
	verbose := flag.Bool("verbose", false, "print per-attack details")
	signatures := flag.Bool("signatures", false, "extract intrusion signatures from the exploits")
	list := flag.Bool("list", false, "list the attack corpus and exit")
	asJSON := flag.Bool("json", false, "with -list, emit JSON")
	corpus := flag.Bool("corpus", false, "run the corpus detection-precision matrix and exit")
	flag.Parse()

	if *list {
		if err := listCorpus(*asJSON); err != nil {
			fmt.Fprintln(os.Stderr, "shiftattack:", err)
			os.Exit(1)
		}
		return
	}
	if *corpus {
		if err := runCorpus(); err != nil {
			fmt.Fprintln(os.Stderr, "shiftattack:", err)
			os.Exit(1)
		}
		return
	}

	results, err := attacks.EvaluateAll()
	if err != nil {
		fmt.Fprintln(os.Stderr, "shiftattack:", err)
		os.Exit(1)
	}
	bench.PrintTable2(os.Stdout, results)

	failed := 0
	for _, r := range results {
		if !r.Detected() {
			failed++
		}
		if *verbose {
			fmt.Printf("\n%s @ %s-level:\n  benign alert: %q\n  exploit policy: %q\n  exploit succeeds unprotected: %v\n",
				r.Attack.Program, r.Gran, r.BenignAlert, r.ExploitPolicy, r.UnprotectedSucceeded)
		}
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "shiftattack: %d evaluations failed\n", failed)
		os.Exit(1)
	}
	fmt.Printf("\nall %d evaluations detected, zero false positives\n", len(results))

	if *signatures {
		if err := printSignatures(); err != nil {
			fmt.Fprintln(os.Stderr, "shiftattack:", err)
			os.Exit(1)
		}
	}
}
