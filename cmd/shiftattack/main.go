// Command shiftattack runs the security evaluation standalone (the
// paper's Table 2): every attack at byte and word granularity, verifying
// detection with no false positives and that each exploit succeeds when
// SHIFT is off.
//
// With -signatures it additionally extracts an intrusion-prevention
// signature from each detected high-level attack (the attacker-controlled
// bytes at the violated sink) and shows the input channel they came from.
//
// Usage:
//
//	shiftattack [-verbose] [-signatures]
package main

import (
	"flag"
	"fmt"
	"os"

	"shift/internal/attacks"
	"shift/internal/bench"
	"shift/internal/forensics"
	"shift/internal/shift"
	"shift/internal/taint"
)

// printSignatures re-runs each exploit and prints the extracted signature
// with its provenance.
func printSignatures() error {
	fmt.Println("\nIntrusion-prevention signatures (attacker-controlled sink bytes):")
	all := append(attacks.All(), attacks.Extensions()...)
	for _, a := range all {
		conf := a.Config()
		conf.Granularity = taint.Byte
		world := a.Exploit()
		res, err := shift.BuildAndRun([]shift.Source{{Name: a.Program, Text: a.Source}},
			world, shift.Options{Instrument: true, Policy: conf})
		if err != nil {
			return err
		}
		if res.Alert == nil {
			fmt.Printf("  %-30s (not detected)\n", a.Program)
			continue
		}
		sig := forensics.FromViolation(res.Alert.Violation)
		if sig == nil {
			fmt.Printf("  %-30s %s (register-level fault: no sink bytes)\n",
				a.Program, res.Alert.Violation.Policy)
			continue
		}
		fmt.Printf("  %-30s %s\n", a.Program, sig)
		for _, p := range forensics.Locate(sig, forensics.Channels{
			Network: world.NetIn, Stdin: world.Stdin, Args: world.Args, Files: world.Files,
		}) {
			fmt.Printf("  %-30s   token %q from %s+%d\n", "", p.Token.Text, p.Channel, p.Offset)
		}
	}
	return nil
}

func main() {
	verbose := flag.Bool("verbose", false, "print per-attack details")
	signatures := flag.Bool("signatures", false, "extract intrusion signatures from the exploits")
	flag.Parse()

	results, err := attacks.EvaluateAll()
	if err != nil {
		fmt.Fprintln(os.Stderr, "shiftattack:", err)
		os.Exit(1)
	}
	bench.PrintTable2(os.Stdout, results)

	failed := 0
	for _, r := range results {
		if !r.Detected() {
			failed++
		}
		if *verbose {
			fmt.Printf("\n%s @ %s-level:\n  benign alert: %q\n  exploit policy: %q\n  exploit succeeds unprotected: %v\n",
				r.Attack.Program, r.Gran, r.BenignAlert, r.ExploitPolicy, r.UnprotectedSucceeded)
		}
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "shiftattack: %d evaluations failed\n", failed)
		os.Exit(1)
	}
	fmt.Printf("\nall %d evaluations detected, zero false positives\n", len(results))

	if *signatures {
		if err := printSignatures(); err != nil {
			fmt.Fprintln(os.Stderr, "shiftattack:", err)
			os.Exit(1)
		}
	}
}
