package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const badProg = `
.data
buf: .space 64
.text
.entry main
main:
	movl r1 = buf
	movl r2 = 7
	st8 [r1] = r2
	movl r32 = 0
	syscall 1
`

func writeTemp(t *testing.T, name, text string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(text), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func lint(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var out, errb bytes.Buffer
	c, err := parseFlags(args, &errb)
	if err != nil {
		t.Fatalf("parseFlags(%v): %v", args, err)
	}
	return run(c, &out, &errb), out.String(), errb.String()
}

// The acceptance pair: a hand-written program missing its tag update
// exits non-zero with a pc-addressed finding; the same program run
// through the instrumentation first lints clean.
func TestMissingTagUpdateFlagged(t *testing.T) {
	path := writeTemp(t, "bad.s", badProg)

	code, out, _ := lint(t, path)
	if code != 1 {
		t.Fatalf("exit %d, want 1; output:\n%s", code, out)
	}
	if !strings.Contains(out, "pc 2") || !strings.Contains(out, "store-tag-update") {
		t.Errorf("finding not pc-addressed:\n%s", out)
	}

	code, out, errb := lint(t, "-instrument", path)
	if code != 0 {
		t.Fatalf("instrumented counterpart: exit %d, want 0; output:\n%s%s", code, out, errb)
	}
}

func TestJSONOutput(t *testing.T) {
	path := writeTemp(t, "bad.s", badProg)
	code, out, _ := lint(t, "-json", path)
	if code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	var findings []struct {
		PC        int    `json:"pc"`
		Invariant string `json:"invariant"`
	}
	if err := json.Unmarshal([]byte(out), &findings); err != nil {
		t.Fatalf("output is not JSON: %v\n%s", err, out)
	}
	if len(findings) == 0 || findings[0].PC != 2 || findings[0].Invariant != "store-tag-update" {
		t.Errorf("unexpected findings: %+v", findings)
	}

	// A clean program still emits a (empty) JSON array.
	code, out, _ = lint(t, "-json", "-instrument", path)
	if code != 0 || strings.TrimSpace(out) != "[]" {
		t.Errorf("clean JSON run: exit %d, output %q", code, out)
	}
}

func TestMinicSourceBuildsAndLints(t *testing.T) {
	path := writeTemp(t, "p.mc", `
int g[8];
void main() {
	char buf[8];
	int n = recv(buf, 8);
	g[0] = n;
	exit(0);
}
`)
	// Uninstrumented compiler output has unpaired memory traffic.
	code, out, _ := lint(t, path)
	if code != 1 {
		t.Fatalf("uninstrumented minic: exit %d, want 1\n%s", code, out)
	}
	// Every instrumentation mode lints clean.
	for _, flags := range [][]string{
		{"-instrument"},
		{"-instrument", "-gran", "word"},
		{"-instrument", "-enhancements"},
		{"-instrument", "-optimize", "-serialized-tags"},
		{"-instrument", "-per-function", "-guards"},
		{"-instrument", "-per-use"},
	} {
		args := append(append([]string{}, flags...), path)
		code, out, errb := lint(t, args...)
		if code != 0 {
			t.Errorf("%v: exit %d\n%s%s", flags, code, out, errb)
		}
	}
}

func TestUsageErrors(t *testing.T) {
	var errb bytes.Buffer
	if _, err := parseFlags([]string{}, &errb); err == nil {
		t.Error("no-argument invocation accepted")
	}
	path := writeTemp(t, "p.s", "main:\n\tsyscall 1\n")
	code, _, _ := lint(t, "-gran", "nibble", "-instrument", path)
	if code != 2 {
		t.Errorf("bad granularity: exit %d, want 2", code)
	}
}

// -reach reports facts, not violations: the same uninstrumented
// program that fails the contract lint exits 0 under -reach, with a
// parseable per-block report that accounts for every site.
func TestReachExitCodes(t *testing.T) {
	const prog = `
.data
buf: .space 64
.text
.entry main
main:
	movl r32 = buf
	movl r33 = 8
	syscall 5
	movl r1 = buf
	ld8 r2 = [r1]
	st8 [r1] = r2
	movl r32 = 0
	syscall 1
`
	path := writeTemp(t, "p.s", prog)

	// Baseline: the contract lint flags the raw memory traffic.
	if code, out, _ := lint(t, path); code != 1 {
		t.Fatalf("plain lint: exit %d, want 1\n%s", code, out)
	}

	code, out, errb := lint(t, "-reach", path)
	if code != 0 {
		t.Fatalf("-reach: exit %d, want 0\n%s%s", code, out, errb)
	}
	if !strings.Contains(out, "reach: ") || !strings.Contains(out, "block ") {
		t.Errorf("-reach output missing report lines:\n%s", out)
	}

	code, out, _ = lint(t, "-reach", "-json", path)
	if code != 0 {
		t.Fatalf("-reach -json: exit %d, want 0", code)
	}
	var rep struct {
		Stats struct {
			Sites int `json:"sites"`
			Kept  int `json:"kept"`
		} `json:"stats"`
		Blocks []struct {
			Live bool `json:"live"`
		} `json:"blocks"`
	}
	if err := json.Unmarshal([]byte(out), &rep); err != nil {
		t.Fatalf("-reach -json output not JSON: %v\n%s", err, out)
	}
	if rep.Stats.Sites != 2 || rep.Stats.Kept != 2 || len(rep.Blocks) == 0 {
		t.Errorf("reach stats = %+v, want 2 sites both kept", rep)
	}
}

// -summary appends one line with block/edge counts and per-invariant
// finding counts; under -json it lands on stderr.
func TestSummaryLine(t *testing.T) {
	path := writeTemp(t, "bad.s", badProg)
	code, out, _ := lint(t, "-summary", path)
	if code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	if !strings.Contains(out, "summary: blocks=") ||
		!strings.Contains(out, "store-tag-update=") {
		t.Errorf("summary line missing or incomplete:\n%s", out)
	}

	_, out, errb := lint(t, "-summary", "-json", path)
	if strings.Contains(out, "summary:") {
		t.Error("-json stdout polluted by the summary line")
	}
	if !strings.Contains(errb, "summary: blocks=") {
		t.Errorf("summary line not on stderr under -json:\n%s", errb)
	}
}
