// Command shiftlint statically verifies the SHIFT instrumentation
// contract (internal/staticcheck) over a program and reports every
// violation, pc-addressed, in human or machine (-json) form.
//
// Usage:
//
//	shiftlint [-json] [-instrument] [-gran byte|word] [-enhancements]
//	          [-serialized-tags] [-optimize] [-per-function] [-per-use]
//	          [-guards] prog.s | prog.mc
//
// Assembly sources (.s) are assembled and linted as-is; minic sources
// (.mc) are compiled with the runtime library first. With -instrument
// the SHIFT pass runs before the lint — its internal verification gate
// is bypassed so this tool, not the pass, is the reporter.
//
// Exit status: 0 clean, 1 findings, 2 usage or build error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"shift/internal/asm"
	"shift/internal/instrument"
	"shift/internal/isa"
	"shift/internal/machine"
	"shift/internal/shift"
	"shift/internal/staticcheck"
	"shift/internal/taint"
)

type config struct {
	jsonOut     bool
	instr       bool
	gran        string
	enhance     bool
	serialized  bool
	optimize    bool
	perFunction bool
	perUse      bool
	guards      bool
	path        string
}

func parseFlags(args []string, stderr io.Writer) (*config, error) {
	fs := flag.NewFlagSet("shiftlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	c := &config{}
	fs.BoolVar(&c.jsonOut, "json", false, "emit findings as a JSON array")
	fs.BoolVar(&c.instr, "instrument", false, "run the SHIFT pass before linting")
	fs.StringVar(&c.gran, "gran", "byte", "tracking granularity: byte or word")
	fs.BoolVar(&c.enhance, "enhancements", false, "enable the proposed enhancement instructions")
	fs.BoolVar(&c.serialized, "serialized-tags", false, "serialize byte-level bitmap updates")
	fs.BoolVar(&c.optimize, "optimize", false, "enable the §6.4 compiler optimizations")
	fs.BoolVar(&c.perFunction, "per-function", false, "regenerate the NaT source per function")
	fs.BoolVar(&c.perUse, "per-use", false, "regenerate the NaT source per tainting site")
	fs.BoolVar(&c.guards, "guards", false, "insert user-level violation guards")
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	if fs.NArg() != 1 {
		return nil, fmt.Errorf("exactly one program expected")
	}
	c.path = fs.Arg(0)
	return c, nil
}

// run executes the lint and returns the process exit status.
func run(c *config, stdout, stderr io.Writer) int {
	var prog *isa.Program
	text, err := os.ReadFile(c.path)
	if err != nil {
		fmt.Fprintln(stderr, "shiftlint:", err)
		return 2
	}
	if strings.HasSuffix(c.path, ".s") {
		prog, err = asm.Assemble(string(text), asm.Options{})
	} else {
		prog, err = shift.Build([]shift.Source{{Name: c.path, Text: string(text)}}, shift.Options{})
	}
	if err != nil {
		fmt.Fprintln(stderr, "shiftlint:", err)
		return 2
	}

	if c.instr {
		opt := instrument.Options{SkipVerify: true}
		switch c.gran {
		case "byte":
			opt.Gran = taint.Byte
		case "word":
			opt.Gran = taint.Word
		default:
			fmt.Fprintf(stderr, "shiftlint: unknown granularity %q\n", c.gran)
			return 2
		}
		if c.enhance {
			opt.Feat = machine.Features{SetClrNaT: true, NaTAwareCmp: true}
		}
		opt.SerializedTags = c.serialized
		opt.Optimize = c.optimize
		opt.NaTPerFunction = c.perFunction
		opt.NaTPerUse = c.perUse
		opt.UserGuards = c.guards
		prog, err = instrument.Apply(prog, opt)
		if err != nil {
			fmt.Fprintln(stderr, "shiftlint:", err)
			return 2
		}
	}

	findings := staticcheck.Check(prog)
	if c.jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "\t")
		if findings == nil {
			findings = []staticcheck.Finding{}
		}
		if err := enc.Encode(findings); err != nil {
			fmt.Fprintln(stderr, "shiftlint:", err)
			return 2
		}
	} else {
		for _, f := range findings {
			fmt.Fprintf(stdout, "%s: %s\n", c.path, f.String())
		}
	}
	if len(findings) > 0 {
		if !c.jsonOut {
			fmt.Fprintf(stdout, "shiftlint: %d finding(s)\n", len(findings))
		}
		return 1
	}
	return 0
}

func main() {
	c, err := parseFlags(os.Args[1:], os.Stderr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "shiftlint:", err)
		os.Exit(2)
	}
	os.Exit(run(c, os.Stdout, os.Stderr))
}
