// Command shiftlint statically verifies the SHIFT instrumentation
// contract (internal/staticcheck) over a program and reports every
// violation, pc-addressed, in human or machine (-json) form.
//
// Usage:
//
//	shiftlint [-json] [-instrument] [-gran byte|word] [-enhancements]
//	          [-serialized-tags] [-optimize] [-per-function] [-per-use]
//	          [-guards] [-reach] [-summary] prog.s | prog.mc
//
// Assembly sources (.s) are assembled and linted as-is; minic sources
// (.mc) are compiled with the runtime library first. With -instrument
// the SHIFT pass runs before the lint — its internal verification gate
// is bypassed so this tool, not the pass, is the reporter.
//
// With -reach the contract lint is replaced by the whole-program taint
// reachability analysis (internal/staticcheck/reach): per-basic-block
// may-touch-taint facts plus a program summary, in human or JSON form.
// It answers "what would selective instrumentation keep", so an
// uninstrumented program exits 0.
//
// -summary appends one line — blocks, edges, and finding counts by
// invariant — after the findings (to stderr under -json, keeping
// stdout machine-readable).
//
// Exit status: 0 clean, 1 findings, 2 usage or build error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"shift/internal/asm"
	"shift/internal/instrument"
	"shift/internal/isa"
	"shift/internal/machine"
	"shift/internal/policy"
	"shift/internal/shift"
	"shift/internal/staticcheck"
	"shift/internal/staticcheck/reach"
	"shift/internal/taint"
)

type config struct {
	jsonOut     bool
	instr       bool
	gran        string
	enhance     bool
	serialized  bool
	optimize    bool
	perFunction bool
	perUse      bool
	guards      bool
	reachOut    bool
	summary     bool
	path        string
}

func parseFlags(args []string, stderr io.Writer) (*config, error) {
	fs := flag.NewFlagSet("shiftlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	c := &config{}
	fs.BoolVar(&c.jsonOut, "json", false, "emit findings as a JSON array")
	fs.BoolVar(&c.instr, "instrument", false, "run the SHIFT pass before linting")
	fs.StringVar(&c.gran, "gran", "byte", "tracking granularity: byte or word")
	fs.BoolVar(&c.enhance, "enhancements", false, "enable the proposed enhancement instructions")
	fs.BoolVar(&c.serialized, "serialized-tags", false, "serialize byte-level bitmap updates")
	fs.BoolVar(&c.optimize, "optimize", false, "enable the §6.4 compiler optimizations")
	fs.BoolVar(&c.perFunction, "per-function", false, "regenerate the NaT source per function")
	fs.BoolVar(&c.perUse, "per-use", false, "regenerate the NaT source per tainting site")
	fs.BoolVar(&c.guards, "guards", false, "insert user-level violation guards")
	fs.BoolVar(&c.reachOut, "reach", false, "report taint-reachability facts instead of linting")
	fs.BoolVar(&c.summary, "summary", false, "append a one-line summary (blocks, edges, findings by invariant)")
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	if fs.NArg() != 1 {
		return nil, fmt.Errorf("exactly one program expected")
	}
	c.path = fs.Arg(0)
	return c, nil
}

// run executes the lint and returns the process exit status.
func run(c *config, stdout, stderr io.Writer) int {
	var prog *isa.Program
	text, err := os.ReadFile(c.path)
	if err != nil {
		fmt.Fprintln(stderr, "shiftlint:", err)
		return 2
	}
	if strings.HasSuffix(c.path, ".s") {
		prog, err = asm.Assemble(string(text), asm.Options{})
	} else {
		prog, err = shift.Build([]shift.Source{{Name: c.path, Text: string(text)}}, shift.Options{})
	}
	if err != nil {
		fmt.Fprintln(stderr, "shiftlint:", err)
		return 2
	}

	var gran taint.Granularity
	switch c.gran {
	case "byte":
		gran = taint.Byte
	case "word":
		gran = taint.Word
	default:
		fmt.Fprintf(stderr, "shiftlint: unknown granularity %q\n", c.gran)
		return 2
	}

	if c.instr {
		opt := instrument.Options{SkipVerify: true, Gran: gran}
		if c.enhance {
			opt.Feat = machine.Features{SetClrNaT: true, NaTAwareCmp: true}
		}
		opt.SerializedTags = c.serialized
		opt.Optimize = c.optimize
		opt.NaTPerFunction = c.perFunction
		opt.NaTPerUse = c.perUse
		opt.UserGuards = c.guards
		prog, err = instrument.Apply(prog, opt)
		if err != nil {
			fmt.Fprintln(stderr, "shiftlint:", err)
			return 2
		}
	}

	if c.reachOut {
		return runReach(c, prog, gran, stdout, stderr)
	}

	findings := staticcheck.Check(prog)
	if c.jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "\t")
		if findings == nil {
			findings = []staticcheck.Finding{}
		}
		if err := enc.Encode(findings); err != nil {
			fmt.Fprintln(stderr, "shiftlint:", err)
			return 2
		}
	} else {
		for _, f := range findings {
			fmt.Fprintf(stdout, "%s: %s\n", c.path, f.String())
		}
	}
	if c.summary {
		// Under -json the summary goes to stderr so stdout stays a
		// parseable findings array.
		dst := stdout
		if c.jsonOut {
			dst = stderr
		}
		fmt.Fprintln(dst, summaryLine(prog, gran, findings))
	}
	if len(findings) > 0 {
		if !c.jsonOut {
			fmt.Fprintf(stdout, "shiftlint: %d finding(s)\n", len(findings))
		}
		return 1
	}
	return 0
}

// summaryLine renders the -summary line: CFG size plus finding counts
// grouped by invariant, invariants in sorted order.
func summaryLine(prog *isa.Program, gran taint.Granularity, findings []staticcheck.Finding) string {
	a := reach.Analyze(prog, reach.Config{Sources: policy.DefaultConfig().Sources, Gran: gran})
	s := a.Stats()
	line := fmt.Sprintf("summary: blocks=%d edges=%d findings=%d", s.Blocks, s.Edges, len(findings))
	byInv := map[string]int{}
	for _, f := range findings {
		byInv[f.Invariant]++
	}
	invs := make([]string, 0, len(byInv))
	for inv := range byInv {
		invs = append(invs, inv)
	}
	sort.Strings(invs)
	for _, inv := range invs {
		line += fmt.Sprintf(" %s=%d", inv, byInv[inv])
	}
	return line
}

// runReach reports the taint-reachability facts for prog and always
// exits 0 on success: the analysis describes what selective
// instrumentation would keep, it does not judge the program.
func runReach(c *config, prog *isa.Program, gran taint.Granularity, stdout, stderr io.Writer) int {
	a := reach.Analyze(prog, reach.Config{Sources: policy.DefaultConfig().Sources, Gran: gran})
	stats := a.Stats()
	blocks := a.Blocks()
	if c.jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "\t")
		out := struct {
			Stats  reach.Stats       `json:"stats"`
			Blocks []reach.BlockFact `json:"blocks"`
		}{stats, blocks}
		if err := enc.Encode(out); err != nil {
			fmt.Fprintln(stderr, "shiftlint:", err)
			return 2
		}
	} else {
		for _, b := range blocks {
			live := "live"
			if !b.Live {
				live = "dead"
			}
			fmt.Fprintf(stdout, "block %d-%d (%s): %s sites=%d kept=%d seeds=%d\n",
				b.Start, b.End, b.Sym, live, b.Sites, b.Kept, b.Seeds)
		}
		fmt.Fprintf(stdout, "reach: blocks=%d edges=%d objects=%d tainted=%d all-tainted=%v rounds=%d sites=%d kept=%d skipped=%d dead=%d\n",
			stats.Blocks, stats.Edges, stats.Objects, stats.Tainted,
			stats.AllTainted, stats.Rounds, stats.Sites, stats.Kept,
			stats.Skipped, stats.DeadSites)
	}
	if c.summary {
		dst := stdout
		if c.jsonOut {
			dst = stderr
		}
		fmt.Fprintln(dst, summaryLine(prog, gran, staticcheck.Check(prog)))
	}
	return 0
}

func main() {
	c, err := parseFlags(os.Args[1:], os.Stderr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "shiftlint:", err)
		os.Exit(2)
	}
	os.Exit(run(c, os.Stdout, os.Stderr))
}
