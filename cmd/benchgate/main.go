// Command benchgate is the CI performance gate for the execution
// engines. It measures the translated-block engine, the reference
// interpreter, and the hook-free (untraced) path with Go's benchmark
// machinery, writes the numbers to a JSON report, and fails when the
// block engine has regressed against the checked-in baseline or when
// the untraced path costs measurably more than the raw engine.
//
// Usage:
//
//	benchgate [-o BENCH_engines.json] [-baseline BENCH_engines.baseline.json]
//	          [-best N] [-ratio-slack F] [-overhead-max F]
//	          [-tagpipe-floor F] [-selective-slack F] [-check]
//
// Each configuration runs N times and the fastest run is kept (CI
// machines are noisy; the minimum is the most stable estimator of the
// code's actual cost). The gate checks three properties:
//
//   - the block/interp speedup ratio must be at least (1 - ratio-slack)
//     of the baseline ratio: the block engine must not lose ground
//     against the interpreter measured on the same machine, which
//     cancels out host speed differences;
//   - the untraced overhead — the hook-capable driver with no hook
//     attached versus the raw block engine — must stay under
//     overhead-max (default 2%), the observability-is-free invariant;
//   - on hosts with at least four cores, a checked (instrumented,
//     tainted) run with the decoupled tag pipeline must beat the same
//     run with the inline lockstep oracle by tagpipe-floor (default
//     1.5x) — an absolute floor, independent of the baseline file.
//
// Without -check the report is written and the gate always passes
// (useful for refreshing the baseline: copy the output over it).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"testing"

	"shift/internal/asm"
	"shift/internal/instrument"
	"shift/internal/isa"
	"shift/internal/machine"
	"shift/internal/mem"
	"shift/internal/shift"
)

// Report is the JSON schema of BENCH_engines.json.
type Report struct {
	// Nanoseconds per benchmark iteration (one full guest program run),
	// best of -best runs.
	BlockNsPerOp    float64 `json:"block_ns_per_op"`
	InterpNsPerOp   float64 `json:"interp_ns_per_op"`
	UntracedNsPerOp float64 `json:"untraced_ns_per_op"`
	// BlockSpeedup is interp/block: >1 means the block engine is faster.
	BlockSpeedup float64 `json:"block_speedup"`
	// UntracedOverhead is (untraced-block)/block: the cost of the
	// hook-capable entry point when no hook is attached.
	UntracedOverhead float64 `json:"untraced_overhead"`
	GuestInstrPerRun uint64  `json:"guest_instr_per_run"`
	// Checked-run pair: the same tainted guest workload with shadow
	// checking inline (lockstep oracle) versus decoupled onto pipeline
	// workers. TagpipeSpeedup is inline/tagpipe: >1 means decoupling
	// pays. These fields are absent from older baseline files — the gate
	// on them is an absolute floor, not baseline-relative.
	CheckedInlineNsPerOp  float64 `json:"checked_inline_ns_per_op"`
	CheckedTagpipeNsPerOp float64 `json:"checked_tagpipe_ns_per_op"`
	TagpipeSpeedup        float64 `json:"tagpipe_speedup"`
	TagpipeWorkers        int     `json:"tagpipe_workers"`
	// Pooled-server pair: benign request throughput and tail latency of
	// warm pooled guests on the serve path (cmd/shiftd's core without
	// HTTP transport). Gated baseline-relative with generous slack —
	// req/s must not collapse, p99 must not balloon. Absent from older
	// baseline files; the gate skips the pooled properties when the
	// baseline carries no pooled numbers.
	PooledReqPerSec float64 `json:"requests_per_sec"`
	PooledP99Ns     float64 `json:"p99_ns"`
	PoolSize        int     `json:"pool_size"`
	// Selective-instrumentation pair: the taint-sparse workload fully
	// instrumented versus instrumented selectively (whole-program taint
	// reachability keeps only sites that may touch taint).
	// SelectiveSpeedup is full/selective: >1 means pruning pays. The
	// site counts record how much of the program the analysis skipped.
	SelectiveFullNsPerOp float64 `json:"selective_full_ns_per_op"`
	SelectiveNsPerOp     float64 `json:"selective_ns_per_op"`
	SelectiveSpeedup     float64 `json:"selective_speedup"`
	SelectiveSitesKept   int     `json:"selective_sites_kept"`
	SelectiveSitesSkip   int     `json:"selective_sites_skipped"`
}

// benchSource is the same ALU/load/store/branch mix as the repository's
// BenchmarkStepThroughput, so the gate and the Go benchmarks agree.
const benchSource = `
	movl r10 = 2305843009213693952   ; region-1 scratch base
	movl r1 = 1000
	movl r2 = 0
loop:
	add r2 = r2, r1
	xor r3 = r2, r1
	shli r4 = r3, 3
	st8 [r10] = r4
	ld8 r5 = [r10]
	addi r1 = r1, -1
	cmpi.gt p6, p7 = r1, 0
	(p6) br loop
	mov r32 = r2
	syscall 1
`

type exitOS struct{}

func (exitOS) Syscall(m *machine.Machine, num int64) (uint64, *machine.Trap) {
	if num == isa.SysExit {
		m.Halt(m.GR[isa.RegArg0])
		return 0, nil
	}
	return 0, &machine.Trap{Kind: machine.TrapHostError, PC: m.PC, Ins: "syscall"}
}

// measure times one full guest run per iteration under the given engine
// and hook. The untraced configuration assigns the Hook field an
// explicit nil (mirroring internal/trace's BenchmarkStepThroughputUntraced);
// it is measured separately from the plain block configuration to guard
// the nil-check fast path against future hook plumbing taxing hookless
// runs.
func measure(engine machine.Engine, hook machine.StepHook) (nsPerOp float64, retiredPerRun uint64) {
	p, err := asm.Assemble(benchSource, asm.Options{})
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate: assemble:", err)
		os.Exit(1)
	}
	var retired uint64
	res := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			m := mem.New()
			m.MapRegion(0, 0)
			m.MapRegion(1, 0)
			m.MapRegion(2, 0)
			m.Cache = mem.NewCache(16*1024, 64)
			mach := machine.New(p, m)
			mach.Engine = engine
			mach.OS = exitOS{}
			mach.GR[isa.RegSP] = int64(mem.Addr(2, 0x10000))
			mach.Hook = hook
			if trap := mach.Run(); trap != nil {
				b.Fatal(trap)
			}
			retired = mach.Retired
		}
	})
	return float64(res.NsPerOp()), retired
}

// checkedSource is the tainted-loop workload for the checked-run pair:
// network input (a taint source) churned through an inner loop, so the
// instrumented binary carries real tag traffic and the checker — inline
// oracle or decoupled pipeline — has live taint to shadow.
const checkedSource = `
char buf[64];
int out[1];
void main() {
	int n = recv(buf, 64);
	int i;
	int j;
	int acc = 0;
	for (j = 0; j < 60; j++) {
		for (i = 0; i < n; i++) {
			acc += buf[i] ^ j;
		}
	}
	out[0] = acc & 0xff;
	exit(0);
}
`

// sparseSource is the taint-sparse workload for the selective pair: a
// small tainted receive followed by a large clean compute loop over
// untainted globals. Full instrumentation pays tag maintenance on every
// access in the hot loop; the reachability analysis proves the loop
// never touches taint and selective instrumentation skips it.
const sparseSource = `
char buf[16];
int work[64];
int out[1];
void main() {
	int n = recv(buf, 16);
	int i;
	int round;
	int acc = 0;
	for (i = 0; i < 64; i++) {
		work[i] = i * 3;
	}
	for (round = 0; round < 40; round++) {
		for (i = 0; i < 64; i++) {
			acc += work[i] ^ round;
			work[i] = acc & 0xffff;
		}
	}
	int folded = 0;
	for (i = 0; i < n; i++) {
		folded += buf[i];
	}
	out[0] = folded & 0xff;
	exit(0);
}
`

// measureChecked times one full run of the given instrumented workload
// per iteration. Building is hoisted out of the timed region — the gate
// compares checking regimes, not the compiler.
func measureChecked(src string, opt shift.Options, input []byte) float64 {
	prog, err := shift.Build([]shift.Source{{Name: "checked.mc", Text: src}}, opt)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate: build:", err)
		os.Exit(1)
	}
	res := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			world := shift.NewWorld()
			world.NetIn = input
			r, err := shift.Run(prog, world, opt)
			if err != nil {
				b.Fatal(err)
			}
			if r.Trap != nil || r.Alert != nil || r.ExitStatus != 0 {
				b.Fatalf("checked run not clean: trap=%v alert=%v exit=%d", r.Trap, r.Alert, r.ExitStatus)
			}
		}
	})
	return float64(res.NsPerOp())
}

// bestOfRounds interleaves the configurations round-robin for n rounds
// and keeps each one's fastest observation. Interleaving matters: host
// noise (frequency scaling, background load) comes in stretches, and
// round-robin sampling exposes every configuration to the same
// stretches instead of letting one configuration soak up a slow window.
func bestOfRounds(n int, fns []func() (float64, uint64)) ([]float64, uint64) {
	mins := make([]float64, len(fns))
	var instr uint64
	for round := 0; round < n; round++ {
		for i, fn := range fns {
			ns, retired := fn()
			if round == 0 || ns < mins[i] {
				mins[i] = ns
			}
			if retired != 0 {
				instr = retired
			}
		}
	}
	return mins, instr
}

func main() {
	out := flag.String("o", "BENCH_engines.json", "write the JSON report here (- for stdout)")
	baselinePath := flag.String("baseline", "BENCH_engines.baseline.json", "checked-in baseline report")
	bestOf := flag.Int("best", 5, "runs per configuration; the fastest is kept")
	ratioSlack := flag.Float64("ratio-slack", 0.05, "allowed fractional loss of block/interp speedup vs the baseline")
	overheadMax := flag.Float64("overhead-max", 0.02, "maximum untraced overhead fraction")
	tagpipeFloor := flag.Float64("tagpipe-floor", 1.5, "minimum checked-inline/checked-decoupled speedup on hosts with >= 4 cores (0 disables)")
	pooledSlack := flag.Float64("pooled-slack", 0.40, "allowed fractional loss of pooled req/s (and growth of pooled p99) vs the baseline")
	selectiveSlack := flag.Float64("selective-slack", 0.25, "allowed fractional loss of selective-instrumentation speedup vs the baseline")
	check := flag.Bool("check", false, "enforce the gate (exit 1 on regression)")
	flag.Parse()

	rep := &Report{}
	workers := runtime.NumCPU() - 1
	if workers < 1 {
		workers = 1
	} else if workers > 8 {
		workers = 8
	}
	rep.TagpipeWorkers = workers
	input := []byte("benchgate tainted network input: 0123456789abcdef0123456789abcdef")
	inlineOpt := shift.Options{Instrument: true, Oracle: true}
	pipedOpt := shift.Options{Instrument: true, Decoupled: workers}
	fullOpt := shift.Options{Instrument: true}
	selStats := new(instrument.Stats)
	selOpt := shift.Options{Instrument: true, Selective: true, InstrStats: selStats}
	mins, instr := bestOfRounds(*bestOf, []func() (float64, uint64){
		func() (float64, uint64) { return measure(machine.EngineBlock, nil) },
		func() (float64, uint64) { return measure(machine.EngineInterp, nil) },
		func() (float64, uint64) { return measure(machine.EngineBlock, machine.StepHook(nil)) },
		func() (float64, uint64) { return measureChecked(checkedSource, inlineOpt, input), 0 },
		func() (float64, uint64) { return measureChecked(checkedSource, pipedOpt, input), 0 },
		func() (float64, uint64) { return measureChecked(sparseSource, fullOpt, input), 0 },
		func() (float64, uint64) { return measureChecked(sparseSource, selOpt, input), 0 },
	})
	rep.BlockNsPerOp, rep.InterpNsPerOp, rep.UntracedNsPerOp = mins[0], mins[1], mins[2]
	rep.CheckedInlineNsPerOp, rep.CheckedTagpipeNsPerOp = mins[3], mins[4]
	rep.SelectiveFullNsPerOp, rep.SelectiveNsPerOp = mins[5], mins[6]
	rep.GuestInstrPerRun = instr
	rep.BlockSpeedup = rep.InterpNsPerOp / rep.BlockNsPerOp
	rep.UntracedOverhead = rep.UntracedNsPerOp/rep.BlockNsPerOp - 1
	rep.TagpipeSpeedup = rep.CheckedInlineNsPerOp / rep.CheckedTagpipeNsPerOp
	rep.SelectiveSpeedup = rep.SelectiveFullNsPerOp / rep.SelectiveNsPerOp
	rep.SelectiveSitesKept, rep.SelectiveSitesSkip = selStats.Kept, selStats.Skipped
	rep.PoolSize = pooledPoolSize
	pooledRPS, pooledP99, err := measurePooledBest(*bestOf)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate: pooled:", err)
		os.Exit(1)
	}
	rep.PooledReqPerSec, rep.PooledP99Ns = pooledRPS, pooledP99

	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "-" {
		os.Stdout.Write(enc)
	} else if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(1)
	}

	fmt.Printf("benchgate: block %.0f ns/op, interp %.0f ns/op (speedup %.3fx), untraced overhead %+.2f%%\n",
		rep.BlockNsPerOp, rep.InterpNsPerOp, rep.BlockSpeedup, 100*rep.UntracedOverhead)
	fmt.Printf("benchgate: checked inline %.0f ns/op, decoupled (%d workers) %.0f ns/op (speedup %.3fx)\n",
		rep.CheckedInlineNsPerOp, workers, rep.CheckedTagpipeNsPerOp, rep.TagpipeSpeedup)
	fmt.Printf("benchgate: pooled server (%d guests) %.0f req/s, p99 %.2f ms\n",
		rep.PoolSize, rep.PooledReqPerSec, rep.PooledP99Ns/1e6)
	fmt.Printf("benchgate: selective full %.0f ns/op, selective %.0f ns/op (speedup %.3fx, %d/%d sites skipped)\n",
		rep.SelectiveFullNsPerOp, rep.SelectiveNsPerOp, rep.SelectiveSpeedup,
		rep.SelectiveSitesSkip, rep.SelectiveSitesKept+rep.SelectiveSitesSkip)

	if !*check {
		return
	}
	base, err := os.ReadFile(*baselinePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(1)
	}
	var baseline Report
	if err := json.Unmarshal(base, &baseline); err != nil {
		fmt.Fprintln(os.Stderr, "benchgate: baseline:", err)
		os.Exit(1)
	}
	fails := gateFailures(rep, &baseline, *ratioSlack, *overheadMax, *tagpipeFloor, *pooledSlack, *selectiveSlack, runtime.NumCPU())
	for _, f := range fails {
		fmt.Fprintln(os.Stderr, "benchgate: FAIL:", f)
	}
	if len(fails) > 0 {
		os.Exit(1)
	}
	fmt.Println("benchgate: PASS")
}
