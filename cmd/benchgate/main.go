// Command benchgate is the CI performance gate for the execution
// engines. It measures the translated-block engine, the reference
// interpreter, and the hook-free (untraced) path with Go's benchmark
// machinery, writes the numbers to a JSON report, and fails when the
// block engine has regressed against the checked-in baseline or when
// the untraced path costs measurably more than the raw engine.
//
// Usage:
//
//	benchgate [-o BENCH_engines.json] [-baseline BENCH_engines.baseline.json]
//	          [-best N] [-ratio-slack F] [-overhead-max F] [-check]
//
// Each configuration runs N times and the fastest run is kept (CI
// machines are noisy; the minimum is the most stable estimator of the
// code's actual cost). The gate checks two properties:
//
//   - the block/interp speedup ratio must be at least (1 - ratio-slack)
//     of the baseline ratio: the block engine must not lose ground
//     against the interpreter measured on the same machine, which
//     cancels out host speed differences;
//   - the untraced overhead — the hook-capable driver with no hook
//     attached versus the raw block engine — must stay under
//     overhead-max (default 2%), the observability-is-free invariant.
//
// Without -check the report is written and the gate always passes
// (useful for refreshing the baseline: copy the output over it).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"testing"

	"shift/internal/asm"
	"shift/internal/isa"
	"shift/internal/machine"
	"shift/internal/mem"
)

// Report is the JSON schema of BENCH_engines.json.
type Report struct {
	// Nanoseconds per benchmark iteration (one full guest program run),
	// best of -best runs.
	BlockNsPerOp    float64 `json:"block_ns_per_op"`
	InterpNsPerOp   float64 `json:"interp_ns_per_op"`
	UntracedNsPerOp float64 `json:"untraced_ns_per_op"`
	// BlockSpeedup is interp/block: >1 means the block engine is faster.
	BlockSpeedup float64 `json:"block_speedup"`
	// UntracedOverhead is (untraced-block)/block: the cost of the
	// hook-capable entry point when no hook is attached.
	UntracedOverhead float64 `json:"untraced_overhead"`
	GuestInstrPerRun uint64  `json:"guest_instr_per_run"`
}

// benchSource is the same ALU/load/store/branch mix as the repository's
// BenchmarkStepThroughput, so the gate and the Go benchmarks agree.
const benchSource = `
	movl r10 = 2305843009213693952   ; region-1 scratch base
	movl r1 = 1000
	movl r2 = 0
loop:
	add r2 = r2, r1
	xor r3 = r2, r1
	shli r4 = r3, 3
	st8 [r10] = r4
	ld8 r5 = [r10]
	addi r1 = r1, -1
	cmpi.gt p6, p7 = r1, 0
	(p6) br loop
	mov r32 = r2
	syscall 1
`

type exitOS struct{}

func (exitOS) Syscall(m *machine.Machine, num int64) (uint64, *machine.Trap) {
	if num == isa.SysExit {
		m.Halt(m.GR[isa.RegArg0])
		return 0, nil
	}
	return 0, &machine.Trap{Kind: machine.TrapHostError, PC: m.PC, Ins: "syscall"}
}

// measure times one full guest run per iteration under the given engine
// and hook. The untraced configuration assigns the Hook field an
// explicit nil (mirroring internal/trace's BenchmarkStepThroughputUntraced);
// it is measured separately from the plain block configuration to guard
// the nil-check fast path against future hook plumbing taxing hookless
// runs.
func measure(engine machine.Engine, hook machine.StepHook) (nsPerOp float64, retiredPerRun uint64) {
	p, err := asm.Assemble(benchSource, asm.Options{})
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate: assemble:", err)
		os.Exit(1)
	}
	var retired uint64
	res := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			m := mem.New()
			m.MapRegion(0, 0)
			m.MapRegion(1, 0)
			m.MapRegion(2, 0)
			m.Cache = mem.NewCache(16*1024, 64)
			mach := machine.New(p, m)
			mach.Engine = engine
			mach.OS = exitOS{}
			mach.GR[isa.RegSP] = int64(mem.Addr(2, 0x10000))
			mach.Hook = hook
			if trap := mach.Run(); trap != nil {
				b.Fatal(trap)
			}
			retired = mach.Retired
		}
	})
	return float64(res.NsPerOp()), retired
}

// bestOfRounds interleaves the configurations round-robin for n rounds
// and keeps each one's fastest observation. Interleaving matters: host
// noise (frequency scaling, background load) comes in stretches, and
// round-robin sampling exposes every configuration to the same
// stretches instead of letting one configuration soak up a slow window.
func bestOfRounds(n int, fns []func() (float64, uint64)) ([]float64, uint64) {
	mins := make([]float64, len(fns))
	var instr uint64
	for round := 0; round < n; round++ {
		for i, fn := range fns {
			ns, retired := fn()
			if round == 0 || ns < mins[i] {
				mins[i] = ns
			}
			if retired != 0 {
				instr = retired
			}
		}
	}
	return mins, instr
}

func main() {
	out := flag.String("o", "BENCH_engines.json", "write the JSON report here (- for stdout)")
	baselinePath := flag.String("baseline", "BENCH_engines.baseline.json", "checked-in baseline report")
	bestOf := flag.Int("best", 5, "runs per configuration; the fastest is kept")
	ratioSlack := flag.Float64("ratio-slack", 0.05, "allowed fractional loss of block/interp speedup vs the baseline")
	overheadMax := flag.Float64("overhead-max", 0.02, "maximum untraced overhead fraction")
	check := flag.Bool("check", false, "enforce the gate (exit 1 on regression)")
	flag.Parse()

	rep := &Report{}
	mins, instr := bestOfRounds(*bestOf, []func() (float64, uint64){
		func() (float64, uint64) { return measure(machine.EngineBlock, nil) },
		func() (float64, uint64) { return measure(machine.EngineInterp, nil) },
		func() (float64, uint64) { return measure(machine.EngineBlock, machine.StepHook(nil)) },
	})
	rep.BlockNsPerOp, rep.InterpNsPerOp, rep.UntracedNsPerOp = mins[0], mins[1], mins[2]
	rep.GuestInstrPerRun = instr
	rep.BlockSpeedup = rep.InterpNsPerOp / rep.BlockNsPerOp
	rep.UntracedOverhead = rep.UntracedNsPerOp/rep.BlockNsPerOp - 1

	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "-" {
		os.Stdout.Write(enc)
	} else if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(1)
	}

	fmt.Printf("benchgate: block %.0f ns/op, interp %.0f ns/op (speedup %.3fx), untraced overhead %+.2f%%\n",
		rep.BlockNsPerOp, rep.InterpNsPerOp, rep.BlockSpeedup, 100*rep.UntracedOverhead)

	if !*check {
		return
	}
	failed := false
	base, err := os.ReadFile(*baselinePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(1)
	}
	var baseline Report
	if err := json.Unmarshal(base, &baseline); err != nil {
		fmt.Fprintln(os.Stderr, "benchgate: baseline:", err)
		os.Exit(1)
	}
	floor := baseline.BlockSpeedup * (1 - *ratioSlack)
	if rep.BlockSpeedup < floor {
		fmt.Fprintf(os.Stderr, "benchgate: FAIL: block/interp speedup %.3fx below floor %.3fx (baseline %.3fx - %.0f%% slack)\n",
			rep.BlockSpeedup, floor, baseline.BlockSpeedup, 100**ratioSlack)
		failed = true
	}
	if rep.UntracedOverhead > *overheadMax {
		fmt.Fprintf(os.Stderr, "benchgate: FAIL: untraced overhead %.2f%% exceeds %.2f%%\n",
			100*rep.UntracedOverhead, 100**overheadMax)
		failed = true
	}
	if failed {
		os.Exit(1)
	}
	fmt.Println("benchgate: PASS")
}
