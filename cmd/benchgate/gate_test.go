package main

import (
	"math"
	"strings"
	"testing"
)

// goodReport is a measurement that should pass every gate.
func goodReport() *Report {
	return &Report{
		BlockNsPerOp:          100,
		InterpNsPerOp:         300,
		UntracedNsPerOp:       101,
		BlockSpeedup:          3.0,
		UntracedOverhead:      0.01,
		CheckedInlineNsPerOp:  10000,
		CheckedTagpipeNsPerOp: 4000,
		TagpipeSpeedup:        2.5,
		PooledReqPerSec:       1400,
		PooledP99Ns:           20e6,
		PoolSize:              4,
		SelectiveFullNsPerOp:  9000,
		SelectiveNsPerOp:      3000,
		SelectiveSpeedup:      3.0,
		SelectiveSitesKept:    5,
		SelectiveSitesSkip:    120,
	}
}

func goodBaseline() *Report {
	return &Report{BlockSpeedup: 3.0, PooledReqPerSec: 1400, PooledP99Ns: 20e6, SelectiveSpeedup: 3.0}
}

func gate(rep, base *Report, cores int) []string {
	return gateFailures(rep, base, 0.05, 0.02, 1.5, 0.40, 0.25, cores)
}

func TestGatePassesCleanReport(t *testing.T) {
	if fails := gate(goodReport(), goodBaseline(), 8); len(fails) != 0 {
		t.Errorf("clean report failed the gate: %v", fails)
	}
}

// A baseline file missing block_speedup decodes to 0, which used to
// make the floor 0 and pass any regression. It must fail loudly now.
func TestGateMissingBaselineKey(t *testing.T) {
	fails := gate(goodReport(), &Report{}, 8)
	if len(fails) == 0 {
		t.Fatal("zero-value baseline passed the gate")
	}
	if !strings.Contains(strings.Join(fails, "\n"), "baseline") {
		t.Errorf("failure does not name the baseline: %v", fails)
	}
}

// Zero and negative ns-per-op are measurement bugs, not fast code.
func TestGateDegenerateDurations(t *testing.T) {
	for _, mutate := range []func(*Report){
		func(r *Report) { r.BlockNsPerOp = 0 },
		func(r *Report) { r.InterpNsPerOp = -5 },
		func(r *Report) { r.UntracedNsPerOp = math.Inf(1) },
		func(r *Report) { r.CheckedInlineNsPerOp = 0 },
		func(r *Report) { r.CheckedTagpipeNsPerOp = -1 },
	} {
		rep := goodReport()
		mutate(rep)
		if fails := gate(rep, goodBaseline(), 8); len(fails) == 0 {
			t.Errorf("degenerate report %+v passed the gate", rep)
		}
	}
}

// NaN compares false against every threshold; the gate must reject NaN
// ratios explicitly rather than inherit a silent pass.
func TestGateNaNRatios(t *testing.T) {
	for _, mutate := range []func(*Report){
		func(r *Report) { r.BlockSpeedup = math.NaN() },
		func(r *Report) { r.UntracedOverhead = math.NaN() },
		func(r *Report) { r.TagpipeSpeedup = math.NaN() },
	} {
		rep := goodReport()
		mutate(rep)
		fails := gate(rep, goodBaseline(), 8)
		if len(fails) == 0 {
			t.Errorf("NaN report %+v passed the gate", rep)
		}
		if !strings.Contains(strings.Join(fails, "\n"), "degenerate") {
			t.Errorf("NaN not reported as degenerate: %v", fails)
		}
	}
}

func TestGateSpeedupRegression(t *testing.T) {
	rep := goodReport()
	rep.BlockSpeedup = 2.0 // baseline 3.0, slack 5% -> floor 2.85
	if fails := gate(rep, goodBaseline(), 8); len(fails) != 1 {
		t.Errorf("speedup regression: %v", fails)
	}
}

func TestGateUntracedOverhead(t *testing.T) {
	rep := goodReport()
	rep.UntracedOverhead = 0.05
	fails := gate(rep, goodBaseline(), 8)
	if len(fails) != 1 || !strings.Contains(fails[0], "untraced") {
		t.Errorf("overhead breach: %v", fails)
	}
}

// The decoupled-checking floor binds on multi-core hosts only, and is
// absolute: an old baseline without the checked fields cannot mask it.
func TestGateTagpipeFloor(t *testing.T) {
	rep := goodReport()
	rep.TagpipeSpeedup = 1.2
	fails := gate(rep, goodBaseline(), 8)
	if len(fails) != 1 || !strings.Contains(fails[0], "floor") {
		t.Errorf("tagpipe floor breach on 8 cores: %v", fails)
	}
	if fails := gate(rep, goodBaseline(), 2); len(fails) != 0 {
		t.Errorf("tagpipe floor applied on a 2-core host: %v", fails)
	}
	// Disabled floor (0) never binds.
	if fails := gateFailures(rep, goodBaseline(), 0.05, 0.02, 0, 0.40, 0.25, 8); len(fails) != 0 {
		t.Errorf("disabled tagpipe floor still binds: %v", fails)
	}
}

// The pooled-server gate: baseline-relative throughput floor and p99
// ceiling, skipped for pre-pooled baselines, loud on degenerate
// measurements even then.
func TestGatePooledServer(t *testing.T) {
	rep := goodReport()
	rep.PooledReqPerSec = 700 // baseline 1400, slack 40% -> floor 840
	fails := gate(rep, goodBaseline(), 8)
	if len(fails) != 1 || !strings.Contains(fails[0], "pooled throughput") {
		t.Errorf("throughput collapse: %v", fails)
	}

	rep = goodReport()
	rep.PooledP99Ns = 100e6 // baseline 20ms, slack 40% -> ceiling 28ms
	fails = gate(rep, goodBaseline(), 8)
	if len(fails) != 1 || !strings.Contains(fails[0], "pooled p99") {
		t.Errorf("p99 blowup: %v", fails)
	}

	// A baseline from before the pooled measurement existed (both pooled
	// keys decode to 0) skips the relative properties...
	rep = goodReport()
	rep.PooledReqPerSec = 1 // would fail any floor
	if fails := gate(rep, &Report{BlockSpeedup: 3.0}, 8); len(fails) != 0 {
		t.Errorf("pre-pooled baseline should skip the relative gate: %v", fails)
	}

	// ...but a degenerate measurement fails regardless of the baseline.
	for _, mutate := range []func(*Report){
		func(r *Report) { r.PooledReqPerSec = 0 },
		func(r *Report) { r.PooledP99Ns = math.NaN() },
	} {
		rep := goodReport()
		mutate(rep)
		fails := gate(rep, &Report{BlockSpeedup: 3.0}, 8)
		if len(fails) != 1 || !strings.Contains(fails[0], "degenerate pooled") {
			t.Errorf("degenerate pooled measurement: %v", fails)
		}
	}
}

// The selective gate: degenerate measurements fail, an inert analysis
// (no skipped sites) fails, a regressed speedup against the baseline
// fails, and a baseline without the selective key skips the ratio check
// but still demands a sane measurement.
func TestGateSelectiveProperty(t *testing.T) {
	for _, tc := range []struct {
		name   string
		mutate func(*Report)
		want   string
	}{
		{"degenerate full", func(r *Report) { r.SelectiveFullNsPerOp = 0 }, "degenerate selective"},
		{"degenerate selective", func(r *Report) { r.SelectiveNsPerOp = math.Inf(1) }, "degenerate selective"},
		{"nan ratio", func(r *Report) { r.SelectiveSpeedup = math.NaN() }, "selective_speedup"},
		{"inert pruning", func(r *Report) { r.SelectiveSitesSkip = 0 }, "skipped no sites"},
		{"regressed", func(r *Report) { r.SelectiveSpeedup = 1.1 }, "below floor"},
	} {
		rep := goodReport()
		tc.mutate(rep)
		fails := gate(rep, goodBaseline(), 8)
		if len(fails) == 0 {
			t.Errorf("%s: passed the gate", tc.name)
			continue
		}
		if !strings.Contains(strings.Join(fails, "\n"), tc.want) {
			t.Errorf("%s: failures %v do not mention %q", tc.name, fails, tc.want)
		}
	}

	// Pre-selective baseline: ratio check skipped, measurement checks kept.
	old := goodBaseline()
	old.SelectiveSpeedup = 0
	rep := goodReport()
	rep.SelectiveSpeedup = 1.1 // would fail against the refreshed baseline
	if fails := gate(rep, old, 8); len(fails) != 0 {
		t.Errorf("old baseline should skip the selective ratio: %v", fails)
	}
	rep.SelectiveNsPerOp = 0
	if fails := gate(rep, old, 8); len(fails) == 0 {
		t.Error("degenerate measurement passed with an old baseline")
	}
}
