package main

import (
	"fmt"
	"math"
)

// finitePositive reports whether v is a usable measurement: a real,
// positive duration or ratio. Zero is not usable — an ns-per-op of 0
// means the benchmark never ran (or a baseline key was missing and
// decoded to Go's zero value), and a ratio built from it is garbage.
func finitePositive(v float64) bool {
	return !math.IsNaN(v) && !math.IsInf(v, 0) && v > 0
}

// gateFailures evaluates every gate property against the measured
// report and the checked-in baseline, returning one message per failed
// property (empty means PASS). It is deliberately paranoid about
// degenerate inputs: a missing baseline key decodes to 0, a division
// blowup yields NaN or Inf, and a comparison against either silently
// passes (NaN > x is always false) — all of those must be loud
// failures, never a green gate.
//
// cores is the host's CPU count: the decoupled-pipeline speedup floor
// only applies on hosts with at least four cores, since the pipeline
// needs spare cores to beat inline checking at all.
func gateFailures(rep, baseline *Report, ratioSlack, overheadMax, tagpipeFloor, pooledSlack, selectiveSlack float64, cores int) []string {
	var fails []string
	bad := func(format string, args ...any) {
		fails = append(fails, fmt.Sprintf(format, args...))
	}

	// Measurement sanity: every duration this gate divides by or
	// compares with must be a real positive number.
	for _, f := range []struct {
		name string
		v    float64
	}{
		{"block_ns_per_op", rep.BlockNsPerOp},
		{"interp_ns_per_op", rep.InterpNsPerOp},
		{"untraced_ns_per_op", rep.UntracedNsPerOp},
	} {
		if !finitePositive(f.v) {
			bad("degenerate measurement: %s = %v", f.name, f.v)
		}
	}
	if !finitePositive(baseline.BlockSpeedup) {
		bad("baseline block_speedup = %v (missing key or corrupt baseline file)", baseline.BlockSpeedup)
	}

	// Property 1: block/interp speedup holds its baseline ratio.
	if finitePositive(rep.BlockSpeedup) && finitePositive(baseline.BlockSpeedup) {
		floor := baseline.BlockSpeedup * (1 - ratioSlack)
		if rep.BlockSpeedup < floor {
			bad("block/interp speedup %.3fx below floor %.3fx (baseline %.3fx - %.0f%% slack)",
				rep.BlockSpeedup, floor, baseline.BlockSpeedup, 100*ratioSlack)
		}
	} else if !finitePositive(rep.BlockSpeedup) {
		bad("degenerate ratio: block_speedup = %v", rep.BlockSpeedup)
	}

	// Property 2: the untraced path is free. NaN would compare false
	// against any threshold, so reject it explicitly.
	if math.IsNaN(rep.UntracedOverhead) || math.IsInf(rep.UntracedOverhead, 0) {
		bad("degenerate ratio: untraced_overhead = %v", rep.UntracedOverhead)
	} else if rep.UntracedOverhead > overheadMax {
		bad("untraced overhead %.2f%% exceeds %.2f%%", 100*rep.UntracedOverhead, 100*overheadMax)
	}

	// Property 3: on a multi-core host, decoupled checking beats the
	// inline oracle by an absolute floor. This floor is not baseline-
	// relative — the point of the pipeline is a fixed win over inline
	// checking, not parity with an older self.
	if cores >= 4 && tagpipeFloor > 0 {
		switch {
		case !finitePositive(rep.CheckedInlineNsPerOp) || !finitePositive(rep.CheckedTagpipeNsPerOp):
			bad("degenerate checked-run measurement: inline %v ns/op, tagpipe %v ns/op",
				rep.CheckedInlineNsPerOp, rep.CheckedTagpipeNsPerOp)
		case !finitePositive(rep.TagpipeSpeedup):
			bad("degenerate ratio: tagpipe_speedup = %v", rep.TagpipeSpeedup)
		case rep.TagpipeSpeedup < tagpipeFloor:
			bad("decoupled checking speedup %.3fx below the %.2fx floor (inline %.0f ns/op, tagpipe %.0f ns/op)",
				rep.TagpipeSpeedup, tagpipeFloor, rep.CheckedInlineNsPerOp, rep.CheckedTagpipeNsPerOp)
		}
	}

	// Property 4: the pooled server holds its baseline throughput and
	// tail latency, with generous slack (serve-path numbers swing more
	// than single-engine ns/op on shared CI hosts). Skipped only when
	// the baseline predates the pooled measurement entirely; a
	// degenerate *measurement* is always a failure.
	if pooledSlack > 0 {
		if !finitePositive(rep.PooledReqPerSec) || !finitePositive(rep.PooledP99Ns) {
			bad("degenerate pooled measurement: %v req/s, p99 %v ns", rep.PooledReqPerSec, rep.PooledP99Ns)
		} else if finitePositive(baseline.PooledReqPerSec) && finitePositive(baseline.PooledP99Ns) {
			if floor := baseline.PooledReqPerSec * (1 - pooledSlack); rep.PooledReqPerSec < floor {
				bad("pooled throughput %.0f req/s below floor %.0f (baseline %.0f - %.0f%% slack)",
					rep.PooledReqPerSec, floor, baseline.PooledReqPerSec, 100*pooledSlack)
			}
			if ceil := baseline.PooledP99Ns * (1 + pooledSlack); rep.PooledP99Ns > ceil {
				bad("pooled p99 %.2f ms above ceiling %.2f ms (baseline %.2f ms + %.0f%% slack)",
					rep.PooledP99Ns/1e6, ceil/1e6, baseline.PooledP99Ns/1e6, 100*pooledSlack)
			}
		}
	}
	// Property 5: selective instrumentation keeps paying on the
	// taint-sparse workload. Baseline-relative like the block/interp
	// ratio (same-machine comparison cancels host speed), skipped only
	// when the baseline predates the selective measurement; a
	// degenerate measurement is always a failure. The analysis must
	// also actually skip sites — a selective build that keeps
	// everything silently degrades to full instrumentation and the
	// speedup gate would pass at 1.0x against a stale baseline.
	if selectiveSlack > 0 {
		switch {
		case !finitePositive(rep.SelectiveFullNsPerOp) || !finitePositive(rep.SelectiveNsPerOp):
			bad("degenerate selective measurement: full %v ns/op, selective %v ns/op",
				rep.SelectiveFullNsPerOp, rep.SelectiveNsPerOp)
		case !finitePositive(rep.SelectiveSpeedup):
			bad("degenerate ratio: selective_speedup = %v", rep.SelectiveSpeedup)
		case rep.SelectiveSitesSkip <= 0:
			bad("selective build skipped no sites (kept %d): reachability pruning is inert",
				rep.SelectiveSitesKept)
		case finitePositive(baseline.SelectiveSpeedup):
			floor := baseline.SelectiveSpeedup * (1 - selectiveSlack)
			if rep.SelectiveSpeedup < floor {
				bad("selective speedup %.3fx below floor %.3fx (baseline %.3fx - %.0f%% slack)",
					rep.SelectiveSpeedup, floor, baseline.SelectiveSpeedup, 100*selectiveSlack)
			}
		}
	}
	return fails
}
