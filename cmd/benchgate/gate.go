package main

import (
	"fmt"
	"math"
)

// finitePositive reports whether v is a usable measurement: a real,
// positive duration or ratio. Zero is not usable — an ns-per-op of 0
// means the benchmark never ran (or a baseline key was missing and
// decoded to Go's zero value), and a ratio built from it is garbage.
func finitePositive(v float64) bool {
	return !math.IsNaN(v) && !math.IsInf(v, 0) && v > 0
}

// gateFailures evaluates every gate property against the measured
// report and the checked-in baseline, returning one message per failed
// property (empty means PASS). It is deliberately paranoid about
// degenerate inputs: a missing baseline key decodes to 0, a division
// blowup yields NaN or Inf, and a comparison against either silently
// passes (NaN > x is always false) — all of those must be loud
// failures, never a green gate.
//
// cores is the host's CPU count: the decoupled-pipeline speedup floor
// only applies on hosts with at least four cores, since the pipeline
// needs spare cores to beat inline checking at all.
func gateFailures(rep, baseline *Report, ratioSlack, overheadMax, tagpipeFloor float64, cores int) []string {
	var fails []string
	bad := func(format string, args ...any) {
		fails = append(fails, fmt.Sprintf(format, args...))
	}

	// Measurement sanity: every duration this gate divides by or
	// compares with must be a real positive number.
	for _, f := range []struct {
		name string
		v    float64
	}{
		{"block_ns_per_op", rep.BlockNsPerOp},
		{"interp_ns_per_op", rep.InterpNsPerOp},
		{"untraced_ns_per_op", rep.UntracedNsPerOp},
	} {
		if !finitePositive(f.v) {
			bad("degenerate measurement: %s = %v", f.name, f.v)
		}
	}
	if !finitePositive(baseline.BlockSpeedup) {
		bad("baseline block_speedup = %v (missing key or corrupt baseline file)", baseline.BlockSpeedup)
	}

	// Property 1: block/interp speedup holds its baseline ratio.
	if finitePositive(rep.BlockSpeedup) && finitePositive(baseline.BlockSpeedup) {
		floor := baseline.BlockSpeedup * (1 - ratioSlack)
		if rep.BlockSpeedup < floor {
			bad("block/interp speedup %.3fx below floor %.3fx (baseline %.3fx - %.0f%% slack)",
				rep.BlockSpeedup, floor, baseline.BlockSpeedup, 100*ratioSlack)
		}
	} else if !finitePositive(rep.BlockSpeedup) {
		bad("degenerate ratio: block_speedup = %v", rep.BlockSpeedup)
	}

	// Property 2: the untraced path is free. NaN would compare false
	// against any threshold, so reject it explicitly.
	if math.IsNaN(rep.UntracedOverhead) || math.IsInf(rep.UntracedOverhead, 0) {
		bad("degenerate ratio: untraced_overhead = %v", rep.UntracedOverhead)
	} else if rep.UntracedOverhead > overheadMax {
		bad("untraced overhead %.2f%% exceeds %.2f%%", 100*rep.UntracedOverhead, 100*overheadMax)
	}

	// Property 3: on a multi-core host, decoupled checking beats the
	// inline oracle by an absolute floor. This floor is not baseline-
	// relative — the point of the pipeline is a fixed win over inline
	// checking, not parity with an older self.
	if cores >= 4 && tagpipeFloor > 0 {
		switch {
		case !finitePositive(rep.CheckedInlineNsPerOp) || !finitePositive(rep.CheckedTagpipeNsPerOp):
			bad("degenerate checked-run measurement: inline %v ns/op, tagpipe %v ns/op",
				rep.CheckedInlineNsPerOp, rep.CheckedTagpipeNsPerOp)
		case !finitePositive(rep.TagpipeSpeedup):
			bad("degenerate ratio: tagpipe_speedup = %v", rep.TagpipeSpeedup)
		case rep.TagpipeSpeedup < tagpipeFloor:
			bad("decoupled checking speedup %.3fx below the %.2fx floor (inline %.0f ns/op, tagpipe %.0f ns/op)",
				rep.TagpipeSpeedup, tagpipeFloor, rep.CheckedInlineNsPerOp, rep.CheckedTagpipeNsPerOp)
		}
	}
	return fails
}
