package main

import (
	"fmt"
	"os"
	"sort"
	"sync"
	"time"

	"shift/internal/pool"
	"shift/internal/shift"
	"shift/internal/workload"
)

// Pooled-server configuration: the same guest and pool shape as
// cmd/shiftd's defaults, measured through pool.Run directly so the gate
// tracks the serve path (acquire, run, tag clear, dirty restore,
// release) without HTTP transport noise.
const (
	pooledPoolSize    = 4
	pooledConcurrency = 8
	pooledRequests    = 400
)

// buildPooled compiles the request-server guest and fills a warm pool,
// mirroring cmd/shiftd's construction.
func buildPooled() (*pool.Pool, error) {
	opt := shift.Options{Instrument: true, Policy: workload.HTTPDConfig(), Decoupled: 1}
	prog, err := shift.Build([]shift.Source{{Name: "httpd.mc", Text: workload.HTTPDSource}}, opt)
	if err != nil {
		return nil, err
	}
	return pool.New(prog, pooledPoolSize, opt)
}

func pooledWorld() *shift.World {
	w := shift.NewWorld()
	w.Files = map[string][]byte{"/www/htdocs/index.html": []byte("<html>benchgate</html>\n")}
	rec := make([]byte, workload.HTTPDRequestSize)
	copy(rec, "GET index.html")
	w.NetIn = rec
	return w
}

// measurePooled drives pooledRequests benign requests through the pool
// at pooledConcurrency in-flight and returns throughput plus tail
// latency for one round. Any non-clean result aborts: a throughput
// number from a pool serving errors is not a measurement.
func measurePooled(p *pool.Pool) (reqPerSec, p99Ns float64) {
	lats := make([]time.Duration, pooledRequests)
	var next int64
	var mu sync.Mutex
	take := func() int {
		mu.Lock()
		defer mu.Unlock()
		if int(next) >= pooledRequests {
			return -1
		}
		next++
		return int(next) - 1
	}
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < pooledConcurrency; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				n := take()
				if n < 0 {
					return
				}
				t0 := time.Now()
				res, err := p.Run(pooledWorld())
				lats[n] = time.Since(t0)
				if err != nil || res.Trap != nil || res.Alert != nil {
					fmt.Fprintf(os.Stderr, "benchgate: pooled request failed: err=%v trap=%v alert=%v\n",
						err, res.Trap, res.Alert)
					os.Exit(1)
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	return float64(pooledRequests) / elapsed.Seconds(), float64(lats[pooledRequests*99/100].Nanoseconds())
}

// measurePooledBest runs the pooled measurement for `rounds` rounds
// (after one untimed warmup round that pays first-touch COW faults and
// translation-cache misses) and keeps the best observation of each
// number — max throughput, min p99 — matching the fastest-run estimator
// used for the engine benchmarks.
func measurePooledBest(rounds int) (reqPerSec, p99Ns float64, err error) {
	p, err := buildPooled()
	if err != nil {
		return 0, 0, err
	}
	measurePooled(p)
	for round := 0; round < rounds; round++ {
		rps, p99 := measurePooled(p)
		if round == 0 || rps > reqPerSec {
			reqPerSec = rps
		}
		if round == 0 || p99 < p99Ns {
			p99Ns = p99
		}
	}
	return reqPerSec, p99Ns, nil
}
