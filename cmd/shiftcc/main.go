// Command shiftcc is the SHIFT compiler driver: it compiles minic source
// files to the simulated ISA, optionally applying the SHIFT taint
// instrumentation, and prints the resulting assembly.
//
// Usage:
//
//	shiftcc [-instrument] [-gran byte|word] [-enhancements] [-policy file]
//	        [-no-runtime] [-stats] file.mc [file2.mc ...]
package main

import (
	"flag"
	"fmt"
	"os"

	"shift/internal/isa"
	"shift/internal/machine"
	"shift/internal/policy"
	"shift/internal/shift"
	"shift/internal/taint"
)

func main() {
	instrument := flag.Bool("instrument", false, "apply the SHIFT taint-tracking pass")
	gran := flag.String("gran", "byte", "tracking granularity: byte or word")
	enhance := flag.Bool("enhancements", false, "use the proposed setnat/clrnat and cmp.na instructions")
	policyFile := flag.String("policy", "", "policy configuration file")
	noRuntime := flag.Bool("no-runtime", false, "do not link the runtime library")
	stats := flag.Bool("stats", false, "print instruction counts per cost class instead of assembly")
	flag.Parse()

	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "shiftcc: no input files")
		os.Exit(2)
	}

	opt := shift.Options{
		Instrument: *instrument,
		NoRuntime:  *noRuntime,
	}
	switch *gran {
	case "byte":
		opt.Granularity = taint.Byte
	case "word":
		opt.Granularity = taint.Word
	default:
		fmt.Fprintf(os.Stderr, "shiftcc: unknown granularity %q\n", *gran)
		os.Exit(2)
	}
	if *enhance {
		opt.Features = machine.Features{SetClrNaT: true, NaTAwareCmp: true}
	}
	if *policyFile != "" {
		text, err := os.ReadFile(*policyFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "shiftcc:", err)
			os.Exit(1)
		}
		conf, err := policy.Parse(string(text))
		if err != nil {
			fmt.Fprintln(os.Stderr, "shiftcc:", err)
			os.Exit(1)
		}
		opt.Policy = conf
	}

	var sources []shift.Source
	for _, name := range flag.Args() {
		text, err := os.ReadFile(name)
		if err != nil {
			fmt.Fprintln(os.Stderr, "shiftcc:", err)
			os.Exit(1)
		}
		sources = append(sources, shift.Source{Name: name, Text: string(text)})
	}

	prog, err := shift.Build(sources, opt)
	if err != nil {
		fmt.Fprintln(os.Stderr, "shiftcc:", err)
		os.Exit(1)
	}

	if *stats {
		counts := prog.CountByClass()
		total := 0
		for _, c := range counts {
			total += c
		}
		fmt.Printf("instructions: %d\n", total)
		for cls := isa.CostClass(0); cls < isa.NumCostClasses; cls++ {
			if counts[cls] > 0 {
				fmt.Printf("  %-12s %8d\n", cls, counts[cls])
			}
		}
		return
	}
	fmt.Print(prog.Disassemble())
}
