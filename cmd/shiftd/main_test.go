package main

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"shift/internal/metrics"
	"shift/internal/pool"
	"shift/internal/shift"
	"shift/internal/workload"
)

// testServer builds one pooled server per test binary: pool fill means
// instrumenting the guest once per guest, which dominates test time.
var testServer = sync.OnceValues(func() (*server, error) {
	p, err := buildPool(2, 1, false)
	if err != nil {
		return nil, err
	}
	return newServer(p, metrics.NewRegistry()), nil
})

func handlerFixture(t *testing.T) (*server, *httptest.Server) {
	t.Helper()
	s, err := testServer()
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

func TestServeBenignPage(t *testing.T) {
	_, ts := handlerFixture(t)
	want := string(docRoot()["/www/htdocs/index.html"])
	for _, path := range []string{"/index.html", "/"} {
		status, body := get(t, ts.URL+path)
		if status != http.StatusOK {
			t.Fatalf("GET %s: status %d, want 200", path, status)
		}
		if body != want {
			t.Fatalf("GET %s: body %q, want %q", path, body, want)
		}
	}
}

func TestServeMissingPageIs404(t *testing.T) {
	_, ts := handlerFixture(t)
	status, body := get(t, ts.URL+"/nope.html")
	if status != http.StatusNotFound {
		t.Fatalf("status %d body %q, want 404", status, body)
	}
	if !strings.Contains(body, "404") {
		t.Fatalf("body %q should carry the guest's 404 line", body)
	}
}

// A traversal exploit via the CGI-style file parameter must be blocked
// by the guest's H2 check, answered with 403 carrying the forensic
// bundle, and the bundle must be retrievable at /forensics.
func TestServeExploitIs403WithBundle(t *testing.T) {
	_, ts := handlerFixture(t)
	status, body := get(t, ts.URL+"/?file=..%2F..%2Fetc%2Fpasswd")
	if status != http.StatusForbidden {
		t.Fatalf("status %d body %.200q, want 403", status, body)
	}
	for _, want := range []string{"policy violation", "H2", "/etc/passwd", "provenance"} {
		if !strings.Contains(body, want) {
			t.Errorf("403 body missing %q:\n%.500s", want, body)
		}
	}
	status, bundle := get(t, ts.URL+"/forensics")
	if status != http.StatusOK || !strings.Contains(bundle, "H2") {
		t.Fatalf("/forensics: status %d body %.200q", status, bundle)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	s, ts := handlerFixture(t)
	if st, _ := get(t, ts.URL+"/index.html"); st != http.StatusOK {
		t.Fatalf("warmup request: status %d", st)
	}
	status, body := get(t, ts.URL+"/metrics")
	if status != http.StatusOK {
		t.Fatalf("/metrics: status %d", status)
	}
	for _, want := range []string{
		"shiftd_requests_total", "shiftd_request_ns", "shift_pool_size 2",
		"shift_pool_busy 0", "shift_pool_recycles_total",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	if st := s.pool.Stats(); st.Busy != 0 {
		t.Fatalf("pool busy=%d after requests drained", st.Busy)
	}
}

// requestName's precedence: file param over path, index.html for root,
// and the param is what lets `..` survive client-side canonicalization.
func TestRequestName(t *testing.T) {
	for _, c := range []struct{ url, want string }{
		{"/index.html", "index.html"},
		{"/", "index.html"},
		{"/page4096.html", "page4096.html"},
		{"/?file=../../etc/passwd", "../../etc/passwd"},
		{"/index.html?file=secret", "secret"},
	} {
		r := httptest.NewRequest(http.MethodGet, c.url, nil)
		if got := requestName(r); got != c.want {
			t.Errorf("requestName(%s) = %q, want %q", c.url, got, c.want)
		}
	}
}

// Concurrent mixed traffic over a pool smaller than the client count:
// every benign response byte-exact, every exploit detected. This is the
// in-process version of the sweep's integrity assertion.
func TestConcurrentMixedTraffic(t *testing.T) {
	s, _ := handlerFixture(t)
	want := string(docRoot()["/www/htdocs/index.html"])
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for i := 0; i < 8; i++ {
		evil := i%4 == 3
		wg.Add(1)
		go func() {
			defer wg.Done()
			name := "index.html"
			if evil {
				name = exploitName
			}
			status, body := s.serve(name)
			switch {
			case evil && status != http.StatusForbidden:
				errs <- fmt.Errorf("exploit: status %d body %.120q", status, body)
			case !evil && (status != http.StatusOK || string(body) != want):
				errs <- fmt.Errorf("benign: status %d body %.120q", status, body)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if st := s.pool.Stats(); st.Busy != 0 {
		t.Fatalf("pool busy=%d after drain", st.Busy)
	}
}

// A selectively instrumented guest pool serves the same traffic with
// the same verdicts, and the site accounting lands on the registry as
// the shift_selective_sites_* gauges.
func TestSelectivePoolEquivalentVerdicts(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a second guest pool")
	}
	opt := buildOptions(1, true)
	prog, err := shift.Build([]shift.Source{{Name: "httpd.mc", Text: workload.HTTPDSource}}, opt)
	if err != nil {
		t.Fatal(err)
	}
	p, err := pool.New(prog, 1, opt)
	if err != nil {
		t.Fatal(err)
	}
	if opt.InstrStats.Sites == 0 || opt.InstrStats.Kept == 0 {
		t.Fatalf("selective build stats empty: %+v", *opt.InstrStats)
	}
	reg := metrics.NewRegistry()
	shift.RegisterSelectiveMetrics(reg, opt.InstrStats)
	if got := reg.Gauge("shift_selective_sites_kept").Value(); got != uint64(opt.InstrStats.Kept) {
		t.Errorf("kept gauge = %d, want %d", got, opt.InstrStats.Kept)
	}
	ts := httptest.NewServer(newServer(p, reg).handler())
	defer ts.Close()

	want := string(docRoot()["/www/htdocs/index.html"])
	if status, body := get(t, ts.URL+"/index.html"); status != http.StatusOK || body != want {
		t.Fatalf("benign page: status %d body %q", status, body)
	}
	status, body := get(t, ts.URL+"/?file=..%2F..%2Fetc%2Fpasswd")
	if status != http.StatusForbidden || !strings.Contains(body, "H2") {
		t.Fatalf("exploit: status %d body %.200q, want 403 with H2", status, body)
	}
}
