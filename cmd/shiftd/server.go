package main

import (
	"bytes"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"time"

	"shift/internal/metrics"
	"shift/internal/pool"
	"shift/internal/shift"
	"shift/internal/trace"
	"shift/internal/workload"
)

// docRoot is the server's built-in document tree, keyed by the guest
// paths the Figure-6 server resolves requests against. The maps are
// read-only after construction, so every concurrent guest shares them.
func docRoot() map[string][]byte {
	page := make([]byte, 4096)
	for i := range page {
		page[i] = byte('a' + i%26)
	}
	return map[string][]byte{
		"/www/htdocs/index.html":    []byte("<html>shiftd: every byte of this page was served by an instrumented guest</html>\n"),
		"/www/htdocs/page4096.html": page,
	}
}

// server fronts the guest pool with HTTP: each request becomes one
// 64-byte guest request record, one pooled instrumented guest run, and
// one HTTP response derived from the guest's network output. Policy
// violations surface as 403 with the forensic bundle as the body.
type server struct {
	pool *pool.Pool
	docs map[string][]byte
	reg  *metrics.Registry

	requests *metrics.Counter
	alerts   *metrics.Counter
	failures *metrics.Counter
	latency  *metrics.Histogram

	mu         sync.Mutex
	lastBundle string // most recent forensic bundle, for /forensics
}

// latencyBounds are the request-latency histogram's bucket edges in
// nanoseconds (100µs .. 1s).
var latencyBounds = []uint64{
	100_000, 300_000, 1_000_000, 3_000_000, 10_000_000,
	30_000_000, 100_000_000, 300_000_000, 1_000_000_000,
}

func newServer(p *pool.Pool, reg *metrics.Registry) *server {
	s := &server{
		pool:     p,
		docs:     docRoot(),
		reg:      reg,
		requests: reg.Counter("shiftd_requests_total"),
		alerts:   reg.Counter("shiftd_alerts_total"),
		failures: reg.Counter("shiftd_failures_total"),
		latency:  reg.Histogram("shiftd_request_ns", latencyBounds),
	}
	p.RegisterMetrics(reg)
	return s
}

// requestName extracts the guest file name from an HTTP request: the
// `file` query parameter when present (the CGI-style form a traversal
// exploit must use, since HTTP clients and muxes canonicalize `..`
// away from paths), the URL path otherwise, `index.html` for the root.
func requestName(r *http.Request) string {
	if f := r.URL.Query().Get("file"); f != "" {
		return f
	}
	name := strings.TrimPrefix(r.URL.Path, "/")
	if name == "" {
		return "index.html"
	}
	return name
}

// world builds the per-request guest world: shared read-only document
// tree, one fixed-size request record as network input.
func (s *server) world(name string) *shift.World {
	w := shift.NewWorld()
	w.Files = s.docs
	rec := make([]byte, workload.HTTPDRequestSize)
	copy(rec, "GET "+name)
	w.NetIn = rec
	return w
}

// serve runs one request through the pool and classifies the outcome.
// It is the transport-independent core: the HTTP handler and the sweep
// harness's direct mode both go through it, so a load test exercises
// exactly the production path minus the socket.
func (s *server) serve(name string) (status int, body []byte) {
	s.requests.Inc()
	start := time.Now()
	tr := trace.New(512)
	res, err := s.pool.RunTraced(s.world(name), tr)
	s.latency.Observe(uint64(time.Since(start).Nanoseconds()))
	if err != nil {
		s.failures.Inc()
		return http.StatusInternalServerError, []byte(fmt.Sprintf("host error: %v\n", err))
	}
	if res.Alert != nil {
		s.alerts.Inc()
		bundle := res.Report().String()
		s.mu.Lock()
		s.lastBundle = bundle
		s.mu.Unlock()
		return http.StatusForbidden, []byte("policy violation\n\n" + bundle)
	}
	if res.Trap != nil {
		s.failures.Inc()
		return http.StatusInternalServerError, []byte(fmt.Sprintf("guest trap: %v\n", res.Trap))
	}
	out := res.World.NetOut
	switch {
	case bytes.HasPrefix(out, []byte("404")):
		return http.StatusNotFound, append([]byte(nil), out...)
	case bytes.HasPrefix(out, []byte("400")):
		return http.StatusBadRequest, append([]byte(nil), out...)
	default:
		return http.StatusOK, append([]byte(nil), out...)
	}
}

func (s *server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	status, body := s.serve(requestName(r))
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.WriteHeader(status)
	_, _ = w.Write(body)
}

// handler assembles the full mux: guest requests at /, metrics and the
// most recent forensic bundle from the same process.
func (s *server) handler() http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/", s)
	mux.Handle("/metrics", s.reg.Handler())
	mux.HandleFunc("/forensics", func(w http.ResponseWriter, _ *http.Request) {
		s.mu.Lock()
		bundle := s.lastBundle
		s.mu.Unlock()
		if bundle == "" {
			http.Error(w, "no violations recorded", http.StatusNotFound)
			return
		}
		_, _ = w.Write([]byte(bundle))
	})
	return mux
}
