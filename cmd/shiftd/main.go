// Command shiftd is the pooled-guest HTTP front end: a real net/http
// server where every request is executed by an instrumented guest (the
// Figure-6 request server) drawn from a warm pool, with full
// information-flow tracking, H2 policy checks on every open, forensic
// bundles on violation, and Prometheus metrics served from the same
// process.
//
// Modes:
//
//	shiftd                  serve until terminated
//	shiftd -smoke           start, verify benign/404/exploit handling, exit
//	shiftd -sweep           run the load harness and print a throughput table
//
// Flags: -addr, -pool (guests), -tagpipe (decoupled shadow workers per
// request; 0 = inline tag maintenance), -selective (instrument only
// statically taint-reachable guest sites; the kept/skipped site counts
// are exported as shift_selective_sites_* gauges), -sweep-requests,
// -sweep-max (highest in-flight level, direct mode).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"

	"shift/internal/instrument"
	"shift/internal/isa"
	"shift/internal/metrics"
	"shift/internal/pool"
	"shift/internal/shift"
	"shift/internal/workload"
)

// buildOptions is the server's run configuration: instrumented guest,
// default H-policies with network+file sources, the decoupled tag
// pipeline as the checker when workers > 0, and — when selective is
// set — taint-reachability-pruned instrumentation.
func buildOptions(tagpipe int, selective bool) shift.Options {
	return shift.Options{
		Instrument: true,
		Policy:     workload.HTTPDConfig(),
		Decoupled:  tagpipe,
		Selective:  selective,
		InstrStats: new(instrument.Stats),
	}
}

// buildPool compiles the guest program and fills the warm pool.
func buildPool(size, tagpipe int, selective bool) (*pool.Pool, error) {
	opt := buildOptions(tagpipe, selective)
	prog, err := shift.Build([]shift.Source{{Name: "httpd.mc", Text: workload.HTTPDSource}}, opt)
	if err != nil {
		return nil, fmt.Errorf("building guest: %w", err)
	}
	return pool.New(prog, size, opt)
}

// progOnly compiles the guest program (for callers that pool themselves).
func progOnly(tagpipe int, selective bool) (*isa.Program, shift.Options, error) {
	opt := buildOptions(tagpipe, selective)
	prog, err := shift.Build([]shift.Source{{Name: "httpd.mc", Text: workload.HTTPDSource}}, opt)
	return prog, opt, err
}

func main() {
	addr := flag.String("addr", "127.0.0.1:8080", "listen address")
	poolSize := flag.Int("pool", 4, "warm guests in the pool")
	tagpipe := flag.Int("tagpipe", 1, "decoupled tag-pipeline workers per request (0 = inline)")
	smoke := flag.Bool("smoke", false, "run the smoke check against a live server and exit")
	sweep := flag.Bool("sweep", false, "run the load harness and exit")
	sweepRequests := flag.Int("sweep-requests", 2000, "requests per sweep level")
	sweepMax := flag.Int("sweep-max", 10000, "highest in-flight level (direct mode)")
	selective := flag.Bool("selective", false, "instrument only statically taint-reachable guest sites")
	flag.Parse()

	if *smoke {
		if err := runSmoke(*poolSize, *tagpipe, *selective); err != nil {
			fmt.Fprintln(os.Stderr, "shiftd: smoke: FAIL:", err)
			os.Exit(1)
		}
		fmt.Println("shiftd: smoke: PASS")
		return
	}
	if *sweep {
		if err := runSweep(os.Stdout, *poolSize, *tagpipe, *sweepRequests, *sweepMax, *selective); err != nil {
			fmt.Fprintln(os.Stderr, "shiftd: sweep:", err)
			os.Exit(1)
		}
		return
	}

	opt := buildOptions(*tagpipe, *selective)
	prog, err := shift.Build([]shift.Source{{Name: "httpd.mc", Text: workload.HTTPDSource}}, opt)
	if err != nil {
		fmt.Fprintln(os.Stderr, "shiftd:", err)
		os.Exit(1)
	}
	p, err := pool.New(prog, *poolSize, opt)
	if err != nil {
		fmt.Fprintln(os.Stderr, "shiftd:", err)
		os.Exit(1)
	}
	reg := metrics.NewRegistry()
	if *selective {
		shift.RegisterSelectiveMetrics(reg, opt.InstrStats)
	}
	srv := metrics.NewServer(newServer(p, reg).handler())

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "shiftd:", err)
		os.Exit(1)
	}
	fmt.Printf("shiftd: serving on http://%s (pool=%d tagpipe=%d, metrics at /metrics)\n",
		ln.Addr(), *poolSize, *tagpipe)

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-stop
		fmt.Println("shiftd: shutting down")
		_ = srv.Shutdown(context.Background())
	}()
	if err := srv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "shiftd:", err)
		os.Exit(1)
	}
	st := p.Stats()
	fmt.Printf("shiftd: served %d requests (%d recycles, %d pages restored, %d tag pages cleared)\n",
		st.Requests, st.Recycles, st.RestoredPages, st.ClearedPages)
}
