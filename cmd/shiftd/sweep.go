package main

import (
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"shift/internal/metrics"
)

// exploitName is the traversal payload the smoke and sweep inject: a
// tainted request whose resolved path escapes the document root, which
// H2 must catch on the guest's open().
const exploitName = "../../etc/passwd"

// httpGet fetches a URL and returns status plus body.
func httpGet(client *http.Client, url string) (int, []byte, error) {
	resp, err := client.Get(url)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	return resp.StatusCode, body, err
}

// runSmoke starts a live server on an ephemeral port, drives a short
// benign burst plus one exploit request over real HTTP, and verifies:
// benign content served byte-exact, 404 classification, exploit
// detected with a forensic bundle (both in the 403 body and at
// /forensics), metrics exposed, and a clean shutdown.
func runSmoke(poolSize, tagpipe int, selective bool) error {
	p, err := buildPool(poolSize, tagpipe, selective)
	if err != nil {
		return err
	}
	reg := metrics.NewRegistry()
	s := newServer(p, reg)
	srv := metrics.NewServer(s.handler())
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	base := "http://" + ln.Addr().String()
	client := &http.Client{Timeout: 30 * time.Second}

	wantIndex := string(docRoot()["/www/htdocs/index.html"])

	// Benign burst: 24 requests over 8 connections, every body
	// byte-exact — a recycled guest serving anything stale fails here.
	var wg sync.WaitGroup
	errs := make(chan error, 24)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 3; j++ {
				status, body, err := httpGet(client, base+"/index.html")
				if err != nil {
					errs <- err
					return
				}
				if status != http.StatusOK || string(body) != wantIndex {
					errs <- fmt.Errorf("benign request: status %d body %q", status, body)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		return err
	}

	if status, body, err := httpGet(client, base+"/no-such-page.html"); err != nil {
		return err
	} else if status != http.StatusNotFound {
		return fmt.Errorf("missing page: status %d body %q, want 404", status, body)
	}

	status, body, err := httpGet(client, base+"/?file="+strings.ReplaceAll(exploitName, "/", "%2F"))
	if err != nil {
		return err
	}
	if status != http.StatusForbidden {
		return fmt.Errorf("exploit request: status %d, want 403", status)
	}
	for _, want := range []string{"violation", "H2", "provenance"} {
		if !strings.Contains(string(body), want) {
			return fmt.Errorf("forensic bundle missing %q:\n%s", want, body)
		}
	}
	if status, fb, err := httpGet(client, base+"/forensics"); err != nil || status != http.StatusOK || !strings.Contains(string(fb), "violation") {
		return fmt.Errorf("/forensics: status %d err %v", status, err)
	}
	if status, mb, err := httpGet(client, base+"/metrics"); err != nil || status != http.StatusOK {
		return fmt.Errorf("/metrics: status %d err %v", status, err)
	} else {
		for _, want := range []string{"shift_pool_size", "shiftd_requests_total", "shiftd_alerts_total 1"} {
			if !strings.Contains(string(mb), want) {
				return fmt.Errorf("metrics exposition missing %q", want)
			}
		}
	}

	if err := srv.Shutdown(context.Background()); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	if err := <-done; err != http.ErrServerClosed {
		return fmt.Errorf("serve loop ended with %v, want ErrServerClosed", err)
	}
	st := p.Stats()
	if st.Busy != 0 {
		return fmt.Errorf("pool busy=%d after shutdown", st.Busy)
	}
	fmt.Printf("shiftd: smoke: %d requests, 1 exploit detected with bundle, clean shutdown\n", st.Requests)
	return nil
}

// level is one sweep measurement: `inflight` concurrent submitters
// driving `requests` total requests.
type level struct {
	inflight int
	requests int
	viaHTTP  bool
}

// levelResult is the harness's measurement for one level.
type levelResult struct {
	level
	reqPerSec float64
	p50       time.Duration
	p99       time.Duration
	detected  int
	exploits  int
}

// runLevel drives one concurrency level. Every 50th request is the
// traversal exploit (expected 403 + bundle); every other response must
// be byte-exact — the zero-bleed assertion at load.
func runLevel(s *server, base string, client *http.Client, lv level) (*levelResult, error) {
	wantIndex := string(docRoot()["/www/htdocs/index.html"])
	lats := make([]time.Duration, lv.requests)
	var next, detected, exploits int64
	var mu sync.Mutex
	take := func() int {
		mu.Lock()
		defer mu.Unlock()
		if int(next) >= lv.requests {
			return -1
		}
		next++
		return int(next) - 1
	}
	var wg sync.WaitGroup
	errOnce := sync.Once{}
	var firstErr error
	fail := func(err error) { errOnce.Do(func() { firstErr = err }) }
	start := time.Now()
	for i := 0; i < lv.inflight; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				n := take()
				if n < 0 || firstErr != nil {
					return
				}
				evil := n%50 == 49
				name := "index.html"
				if evil {
					name = exploitName
				}
				t0 := time.Now()
				var status int
				var body []byte
				if lv.viaHTTP {
					url := base + "/" + name
					if evil {
						url = base + "/?file=" + strings.ReplaceAll(name, "/", "%2F")
					}
					var err error
					status, body, err = httpGet(client, url)
					if err != nil {
						fail(err)
						return
					}
				} else {
					status, body = s.serve(name)
				}
				lats[n] = time.Since(t0)
				if evil {
					mu.Lock()
					exploits++
					if status == http.StatusForbidden && strings.Contains(string(body), "violation") {
						detected++
					}
					mu.Unlock()
					continue
				}
				if status != http.StatusOK || string(body) != wantIndex {
					fail(fmt.Errorf("inflight=%d request %d: status %d body %.80q — response integrity broken",
						lv.inflight, n, status, body))
					return
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	if firstErr != nil {
		return nil, firstErr
	}
	if detected != exploits {
		return nil, fmt.Errorf("inflight=%d: %d/%d exploits detected", lv.inflight, detected, exploits)
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	return &levelResult{
		level:     lv,
		reqPerSec: float64(lv.requests) / elapsed.Seconds(),
		p50:       lats[lv.requests/2],
		p99:       lats[lv.requests*99/100],
		detected:  int(detected),
		exploits:  int(exploits),
	}, nil
}

// runSweep is the load harness: HTTP transport at low in-flight levels,
// direct pool submission at high ones (10k concurrent sockets would
// need 2×10k descriptors; the direct mode measures the same serve path
// minus the socket). Every level asserts response integrity and full
// exploit detection.
func runSweep(w io.Writer, poolSize, tagpipe, requests, maxInflight int, selective bool) error {
	p, err := buildPool(poolSize, tagpipe, selective)
	if err != nil {
		return err
	}
	reg := metrics.NewRegistry()
	s := newServer(p, reg)
	srv := metrics.NewServer(s.handler())
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	go func() { _ = srv.Serve(ln) }()
	defer srv.Close()
	base := "http://" + ln.Addr().String()
	client := &http.Client{
		Timeout:   5 * time.Minute,
		Transport: &http.Transport{MaxIdleConns: 256, MaxIdleConnsPerHost: 256},
	}

	var levels []level
	for _, inflight := range []int{1, 16, 64} {
		levels = append(levels, level{inflight: inflight, requests: requests, viaHTTP: true})
	}
	for _, inflight := range []int{256, 2048, maxInflight} {
		if inflight <= 64 {
			continue
		}
		reqs := requests
		if reqs < inflight {
			reqs = inflight // every submitter genuinely in flight at once
		}
		levels = append(levels, level{inflight: inflight, requests: reqs, viaHTTP: false})
	}

	fmt.Fprintf(w, "shiftd sweep: pool=%d tagpipe=%d\n", poolSize, tagpipe)
	fmt.Fprintf(w, "%-9s %9s %9s %12s %12s %10s\n", "mode", "inflight", "requests", "req/s", "p50", "p99")
	for _, lv := range levels {
		res, err := runLevel(s, base, client, lv)
		if err != nil {
			return err
		}
		mode := "direct"
		if lv.viaHTTP {
			mode = "http"
		}
		fmt.Fprintf(w, "%-9s %9d %9d %12.1f %12s %10s\n",
			mode, res.inflight, res.requests, res.reqPerSec, res.p50.Round(time.Microsecond), res.p99.Round(time.Millisecond))
	}
	st := p.Stats()
	fmt.Fprintf(w, "pool: %d recycles, %.1f pages restored/recycle, %d tag pages cleared\n",
		st.Recycles, float64(st.RestoredPages)/float64(max(1, st.Recycles)), st.ClearedPages)
	return nil
}

func max(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
