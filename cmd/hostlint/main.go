// Command hostlint runs the host-side Go checks of
// internal/staticcheck/hostlint (currently the tlbbypass rule) over a
// source tree.
//
// Usage:
//
//	hostlint [root]
//
// root defaults to the current directory. Exit status: 0 clean,
// 1 findings, 2 error.
package main

import (
	"fmt"
	"os"

	"shift/internal/staticcheck/hostlint"
)

func main() {
	root := "."
	if len(os.Args) > 2 {
		fmt.Fprintln(os.Stderr, "hostlint: at most one root directory expected")
		os.Exit(2)
	}
	if len(os.Args) == 2 {
		root = os.Args[1]
	}
	diags, err := hostlint.Check(root, nil)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hostlint:", err)
		os.Exit(2)
	}
	for _, d := range diags {
		fmt.Println(d.String())
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "hostlint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}
