package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

// buildOnce compiles the command once per test binary; acceptance tests
// exec the real executable so flag validation and exit codes are tested
// at the process boundary, exactly as a user hits them.
var buildOnce sync.Once
var builtPath string
var buildErr error

func shiftrunBin(t *testing.T) string {
	t.Helper()
	buildOnce.Do(func() {
		builtPath = filepath.Join(os.TempDir(), "shiftrun-under-test")
		out, err := exec.Command("go", "build", "-o", builtPath, ".").CombinedOutput()
		if err != nil {
			buildErr = err
			builtPath = string(out)
		}
	})
	if buildErr != nil {
		t.Fatalf("building shiftrun: %v\n%s", buildErr, builtPath)
	}
	return builtPath
}

func runCmd(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	cmd := exec.Command(shiftrunBin(t), args...)
	var out, errb strings.Builder
	cmd.Stdout, cmd.Stderr = &out, &errb
	err := cmd.Run()
	code := 0
	if ee, ok := err.(*exec.ExitError); ok {
		code = ee.ExitCode()
	} else if err != nil {
		t.Fatal(err)
	}
	return code, out.String(), errb.String()
}

func writeProg(t *testing.T, text string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "p.mc")
	if err := os.WriteFile(path, []byte(text), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const tinyProg = `
char buf[16];
void main() {
	int n = recv(buf, 16);
	int i;
	int acc = 0;
	for (i = 0; i < n; i++) acc += buf[i];
	print_int(acc);
	putc('\n');
	exit(0);
}
`

// An invalid -tagpipe worker count is a usage error (exit 2), not a
// silent fallback.
func TestTagpipeFlagValidation(t *testing.T) {
	prog := writeProg(t, tinyProg)
	for _, bad := range []string{"-1", "257", "1000000"} {
		code, _, errb := runCmd(t, "-tagpipe", bad, prog)
		if code != 2 {
			t.Errorf("-tagpipe %s: exit %d, want 2 (stderr: %s)", bad, code, errb)
		}
		if !strings.Contains(errb, "tagpipe") {
			t.Errorf("-tagpipe %s: stderr lacks a usage message: %q", bad, errb)
		}
	}
}

// An unknown -engine is likewise exit 2 with a usage error.
func TestEngineFlagValidation(t *testing.T) {
	prog := writeProg(t, tinyProg)
	code, _, errb := runCmd(t, "-engine", "jit", prog)
	if code != 2 || !strings.Contains(errb, "engine") {
		t.Errorf("-engine jit: exit %d, stderr %q; want 2 with a usage message", code, errb)
	}
}

// -tagpipe N runs the program under the decoupled pipeline: same guest
// output and exit status as the inline run, plus a pipeline stats line.
func TestTagpipeRunMatchesInline(t *testing.T) {
	prog := writeProg(t, tinyProg)
	common := []string{"-protect", "-net", "hello worlds!", prog}

	code, inlineOut, errb := runCmd(t, common...)
	if code != 0 {
		t.Fatalf("inline run: exit %d\n%s", code, errb)
	}
	code, pipedOut, errb := runCmd(t, append([]string{"-tagpipe", "3"}, common...)...)
	if code != 0 {
		t.Fatalf("decoupled run: exit %d\n%s", code, errb)
	}
	stats := ""
	for _, line := range strings.Split(pipedOut, "\n") {
		if strings.HasPrefix(line, "tagpipe: ") {
			stats = line
		}
	}
	if stats == "" {
		t.Fatalf("decoupled run printed no pipeline stats:\n%s", pipedOut)
	}
	if got := strings.Replace(pipedOut, stats+"\n", "", 1); got != inlineOut {
		t.Errorf("guest output differs:\ninline:  %q\npiped:   %q", inlineOut, got)
	}
	if strings.Contains(stats, " 0 records") {
		t.Errorf("pipeline reported no records: %s", stats)
	}
}

// -tagpipe 0 is the documented inline default and must not print stats.
func TestTagpipeZeroIsInline(t *testing.T) {
	prog := writeProg(t, tinyProg)
	code, out, errb := runCmd(t, "-tagpipe", "0", "-protect", "-net", "x", prog)
	if code != 0 {
		t.Fatalf("exit %d\n%s", code, errb)
	}
	if strings.Contains(out, "tagpipe:") {
		t.Errorf("-tagpipe 0 printed pipeline stats:\n%s", out)
	}
}
