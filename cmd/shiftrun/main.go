// Command shiftrun compiles a minic program and executes it on the
// simulated machine, with or without SHIFT protection, reporting output,
// alerts and performance counters.
//
// Usage:
//
//	shiftrun [-protect] [-selective] [-gran byte|word] [-enhancements] [-policy file]
//	         [-serialized-tags] [-unsafe-preempt] [-quantum n]
//	         [-net string] [-stdin string] [-file name=path ...]
//	         [-arg value ...] [-counters] [-oracle] [-tagpipe n]
//	         [-engine block|interp]
//	         [-trace out.jsonl] [-trace-chrome out.json] [-trace-depth n]
//	         [-metrics dest] prog.mc
//
// -engine selects the execution engine: block (default) runs cached
// pre-decoded basic blocks, interp runs the reference interpreter. Both
// produce bit-identical results; interp exists as the differential
// baseline and for debugging.
//
// -selective (with -protect) runs the whole-program taint-reachability
// analysis first and leaves statically taint-unreachable sites
// uninstrumented — same verdicts, fewer instrumented instructions. The
// site accounting is printed after the run and exported as the
// shift_selective_sites_kept / shift_selective_sites_skipped gauges
// when -metrics is set.
//
// -net supplies network input (a taint source), -file mounts a host file
// into the simulated filesystem, -arg appends a program argument.
// -oracle runs the lockstep reference DIFT engine alongside execution and
// reports any divergence between the tag machinery and plain shadow
// interpretation (exit status 4). -tagpipe N moves that shadow checking
// off the hot loop onto N asynchronous pipeline workers that drain at
// policy sinks — same verdicts, decoupled propagation (0 = inline).
//
// -trace records the taint-lifecycle flight recorder to a JSONL file
// ("-" for stdout); -trace-chrome writes the same events in Chrome
// trace-event format for Perfetto; -trace-depth bounds the ring buffer.
// When a traced run ends in a policy violation, the forensic report
// (signature, provenance, trace tail) is printed to stderr.
// -metrics exposes the run's counters: an addr-like value (":9090")
// serves Prometheus text over HTTP until interrupted, anything else is a
// file ("-" for stdout) the exposition is dumped to after the run.
//
// For threaded guests, -quantum sets the scheduler time slice in cycles,
// -serialized-tags makes byte-level bitmap updates lock-free atomic, and
// -unsafe-preempt re-opens the §4.4 hazard by letting a slice end between
// a data store and its tag update (the default tag-coherent schedule
// forbids that; the flag exists to demonstrate the failure mode).
package main

import (
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"os/signal"
	"strings"

	"shift/internal/instrument"
	"shift/internal/isa"
	"shift/internal/machine"
	"shift/internal/metrics"
	"shift/internal/policy"
	"shift/internal/shift"
	"shift/internal/tagpipe"
	"shift/internal/taint"
	"shift/internal/trace"
)

// listFlag collects repeated string flags.
type listFlag []string

func (l *listFlag) String() string     { return strings.Join(*l, ",") }
func (l *listFlag) Set(v string) error { *l = append(*l, v); return nil }

func main() {
	protect := flag.Bool("protect", false, "run under SHIFT taint tracking and policies")
	selective := flag.Bool("selective", false, "with -protect, instrument only statically taint-reachable sites")
	gran := flag.String("gran", "byte", "tracking granularity: byte or word")
	enhance := flag.Bool("enhancements", false, "enable the proposed enhancement instructions")
	policyFile := flag.String("policy", "", "policy configuration file")
	netIn := flag.String("net", "", "network input bytes")
	stdinIn := flag.String("stdin", "", "standard input bytes")
	counters := flag.Bool("counters", false, "print cycle and instruction counters")
	profile := flag.Bool("profile", false, "print the per-function execution profile")
	oracleOn := flag.Bool("oracle", false, "cross-check tag state against a lockstep reference engine")
	tagpipeN := flag.Int("tagpipe", 0, "decoupled tag-pipeline worker count (0 = inline checking)")
	serialized := flag.Bool("serialized-tags", false, "serialize byte-level bitmap updates with a cmpxchg retry loop")
	unsafePreempt := flag.Bool("unsafe-preempt", false, "allow preemption between a data store and its tag update (reproduces the paper's §4.4 hazard)")
	quantum := flag.Uint64("quantum", 0, "scheduler time slice in cycles for threaded guests (0 = default)")
	traceOut := flag.String("trace", "", "write the taint-lifecycle trace as JSONL to this file (- for stdout)")
	traceChrome := flag.String("trace-chrome", "", "write the trace in Chrome trace-event format (Perfetto) to this file")
	traceDepth := flag.Int("trace-depth", 0, "flight-recorder ring capacity in events (0 = default)")
	metricsDest := flag.String("metrics", "", "metrics destination: a listen address like :9090 serves Prometheus text over HTTP; otherwise a file the exposition is written to after the run (- for stdout)")
	engineName := flag.String("engine", "block", "execution engine: block (cached translated basic blocks) or interp (reference interpreter)")
	var files, args listFlag
	flag.Var(&files, "file", "mount name=hostpath into the simulated filesystem (repeatable)")
	flag.Var(&args, "arg", "program argument (repeatable)")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "shiftrun: exactly one program expected")
		os.Exit(2)
	}

	if err := tagpipe.ValidateWorkers(*tagpipeN); err != nil {
		fmt.Fprintln(os.Stderr, "shiftrun:", err)
		os.Exit(2)
	}
	var instrStats instrument.Stats
	opt := shift.Options{
		Instrument:     *protect,
		Selective:      *selective && *protect,
		InstrStats:     &instrStats,
		Profile:        *profile,
		Oracle:         *oracleOn,
		Decoupled:      *tagpipeN,
		SerializedTags: *serialized,
		UnsafePreempt:  *unsafePreempt,
		Quantum:        *quantum,
	}
	switch *gran {
	case "byte":
		opt.Granularity = taint.Byte
	case "word":
		opt.Granularity = taint.Word
	default:
		fmt.Fprintf(os.Stderr, "shiftrun: unknown granularity %q\n", *gran)
		os.Exit(2)
	}
	engine, ok := machine.EngineFromString(*engineName)
	if !ok {
		fmt.Fprintf(os.Stderr, "shiftrun: unknown engine %q (want block or interp)\n", *engineName)
		os.Exit(2)
	}
	opt.Engine = engine
	if *enhance {
		opt.Features = machine.Features{SetClrNaT: true, NaTAwareCmp: true}
	}
	if *policyFile != "" {
		text, err := os.ReadFile(*policyFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "shiftrun:", err)
			os.Exit(1)
		}
		conf, err := policy.Parse(string(text))
		if err != nil {
			fmt.Fprintln(os.Stderr, "shiftrun:", err)
			os.Exit(1)
		}
		opt.Policy = conf
	}

	if *traceOut != "" || *traceChrome != "" {
		opt.Trace = trace.New(*traceDepth)
	}
	var serving net.Listener
	if *metricsDest != "" {
		opt.Metrics = metrics.NewRegistry()
		opt.Metrics.PublishExpvar()
		if strings.Contains(*metricsDest, ":") {
			ln, err := opt.Metrics.Serve(*metricsDest)
			if err != nil {
				fmt.Fprintln(os.Stderr, "shiftrun:", err)
				os.Exit(1)
			}
			serving = ln
			fmt.Fprintf(os.Stderr, "shiftrun: serving metrics at http://%s/metrics\n", ln.Addr())
		}
	}

	text, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "shiftrun:", err)
		os.Exit(1)
	}

	world := shift.NewWorld()
	world.NetIn = []byte(*netIn)
	world.Stdin = []byte(*stdinIn)
	world.Args = args
	for _, spec := range files {
		name, host, ok := strings.Cut(spec, "=")
		if !ok {
			fmt.Fprintf(os.Stderr, "shiftrun: bad -file %q (want name=hostpath)\n", spec)
			os.Exit(2)
		}
		content, err := os.ReadFile(host)
		if err != nil {
			fmt.Fprintln(os.Stderr, "shiftrun:", err)
			os.Exit(1)
		}
		world.Files[name] = content
	}

	res, err := shift.BuildAndRun([]shift.Source{{Name: flag.Arg(0), Text: string(text)}}, world, opt)
	if err != nil {
		fmt.Fprintln(os.Stderr, "shiftrun:", err)
		os.Exit(1)
	}

	os.Stdout.Write(res.World.Stdout)
	if len(res.World.NetOut) > 0 {
		fmt.Printf("--- network output (%d bytes) ---\n%s\n", len(res.World.NetOut), res.World.NetOut)
	}
	if len(res.World.HTMLOut) > 0 {
		fmt.Printf("--- html output (%d bytes) ---\n%s\n", len(res.World.HTMLOut), res.World.HTMLOut)
	}
	if res.Alert != nil {
		fmt.Printf("*** %s\n", res.Alert)
	}
	if res.Trap != nil {
		fmt.Printf("*** trap: %v\n", res.Trap)
	}
	if *profile {
		fmt.Println("--- function profile (instructions retired) ---")
		for _, h := range res.Machine.FunctionProfile() {
			fmt.Printf("  %-24s %12d\n", h.Symbol, h.Count)
		}
		fmt.Println("--- hottest instructions ---")
		for _, h := range res.Machine.Hotspots(10) {
			fmt.Printf("  %6d x pc=%-6d %-16s %s\n", h.Count, h.PC, h.Symbol, h.Ins)
		}
	}
	if *oracleOn && res.Oracle != nil {
		st := res.Oracle.Stats
		fmt.Printf("oracle: %d steps, %d register checks, %d unit checks, %d sweeps\n",
			st.Steps, st.RegChecks, st.UnitChecks, st.Sweeps)
	}
	if *tagpipeN > 0 && res.Pipe != nil {
		s := &res.Pipe.Stats
		fmt.Printf("tagpipe: %d records in %d segments (%d direct), %d stalls, %d drains, %d sweeps\n",
			s.Records.Load(), s.Segments.Load(), s.DirectSegs.Load(),
			s.Stalls.Load(), s.Drains.Load(), s.Sweeps.Load())
	}
	if *selective && *protect {
		fmt.Printf("selective: %d sites, %d instrumented, %d skipped\n",
			instrStats.Sites, instrStats.Kept, instrStats.Skipped)
	}
	if *counters {
		fmt.Printf("cycles: %d  instructions: %d\n", res.Cycles, res.Retired)
		for cls := isa.CostClass(0); cls < isa.NumCostClasses; cls++ {
			if res.CyclesByClass[cls] > 0 {
				fmt.Printf("  %-12s %12d cycles\n", cls, res.CyclesByClass[cls])
			}
		}
	}
	if opt.Trace != nil {
		if *traceOut != "" {
			if err := writeOut(*traceOut, opt.Trace.WriteJSONL); err != nil {
				fmt.Fprintln(os.Stderr, "shiftrun:", err)
				os.Exit(1)
			}
		}
		if *traceChrome != "" {
			if err := writeOut(*traceChrome, opt.Trace.WriteChromeTrace); err != nil {
				fmt.Fprintln(os.Stderr, "shiftrun:", err)
				os.Exit(1)
			}
		}
		// A traced violation gets the full flight-recorder report: the
		// attack signature plus the event tail showing the tainted
		// input's path to the sink.
		if res.Alert != nil {
			if rep := res.Report(); rep != nil {
				fmt.Fprint(os.Stderr, rep)
			}
		}
	}
	if opt.Metrics != nil && serving == nil {
		if err := writeOut(*metricsDest, opt.Metrics.WritePrometheus); err != nil {
			fmt.Fprintln(os.Stderr, "shiftrun:", err)
			os.Exit(1)
		}
	}
	if serving != nil {
		// Keep the exposition scrapeable until the user interrupts; the
		// run's counters are final at this point.
		fmt.Fprintln(os.Stderr, "shiftrun: run complete; metrics still serving (interrupt to exit)")
		ch := make(chan os.Signal, 1)
		signal.Notify(ch, os.Interrupt)
		<-ch
	}
	switch {
	case res.Alert != nil:
		os.Exit(3)
	case res.Trap != nil:
		os.Exit(4)
	default:
		os.Exit(int(res.ExitStatus) & 0x7f)
	}
}

// writeOut writes via fn to path, with "-" meaning stdout.
func writeOut(path string, fn func(io.Writer) error) error {
	if path == "-" {
		return fn(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := fn(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
