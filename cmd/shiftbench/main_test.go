package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

// The acceptance tests exec the built command so flag validation is
// tested at the process boundary. Experiments themselves are covered by
// internal/bench; here only the cheap table1 path runs end to end.
var buildOnce sync.Once
var builtPath string
var buildErr error

func shiftbenchBin(t *testing.T) string {
	t.Helper()
	buildOnce.Do(func() {
		builtPath = filepath.Join(os.TempDir(), "shiftbench-under-test")
		out, err := exec.Command("go", "build", "-o", builtPath, ".").CombinedOutput()
		if err != nil {
			buildErr = err
			builtPath = string(out)
		}
	})
	if buildErr != nil {
		t.Fatalf("building shiftbench: %v\n%s", buildErr, builtPath)
	}
	return builtPath
}

func runCmd(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	cmd := exec.Command(shiftbenchBin(t), args...)
	var out, errb strings.Builder
	cmd.Stdout, cmd.Stderr = &out, &errb
	err := cmd.Run()
	code := 0
	if ee, ok := err.(*exec.ExitError); ok {
		code = ee.ExitCode()
	} else if err != nil {
		t.Fatal(err)
	}
	return code, out.String(), errb.String()
}

// Invalid flag values are usage errors (exit 2), never silent defaults.
func TestFlagValidation(t *testing.T) {
	cases := []struct {
		args []string
		want string // substring of the usage message
	}{
		{[]string{"-tagpipe", "-1", "-experiment", "table1"}, "tagpipe"},
		{[]string{"-tagpipe", "999", "-experiment", "table1"}, "tagpipe"},
		{[]string{"-engine", "turbo", "-experiment", "table1"}, "engine"},
		{[]string{"-scale-div", "0", "-experiment", "table1"}, "scale-div"},
	}
	for _, c := range cases {
		code, _, errb := runCmd(t, c.args...)
		if code != 2 {
			t.Errorf("%v: exit %d, want 2 (stderr: %s)", c.args, code, errb)
		}
		if !strings.Contains(errb, c.want) {
			t.Errorf("%v: stderr %q lacks %q", c.args, errb, c.want)
		}
	}
}

// A valid -tagpipe value is accepted; table1 is static, so this stays
// fast while still walking the full flag path.
func TestTagpipeFlagAccepted(t *testing.T) {
	code, out, errb := runCmd(t, "-tagpipe", "4", "-experiment", "table1")
	if code != 0 {
		t.Fatalf("exit %d\n%s", code, errb)
	}
	if !strings.Contains(out, "Table 1") {
		t.Errorf("table1 output missing:\n%s", out)
	}
}
