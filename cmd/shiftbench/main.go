// Command shiftbench regenerates the paper's evaluation tables and
// figures (Tables 1–3, Figures 6–9, and the §4.4 ablation).
//
// Usage:
//
//	shiftbench [-experiment all|table1|table2|table3|fig6|fig7|fig8|fig9|ablation]
//	           [-scale-div N] [-requests N]
//
// -scale-div divides the benchmarks' reference input sizes (1 = the full
// evaluation; larger values run proportionally faster). -requests sets
// the Figure 6 request count (the paper used 1000).
package main

import (
	"flag"
	"fmt"
	"os"

	"shift/internal/bench"
)

func main() {
	experiment := flag.String("experiment", "all", "which experiment to run (all, table1, table2, table3, fig6, fig7, fig8, fig9, ablation)")
	scaleDiv := flag.Int("scale-div", 1, "divide reference input scales by this factor")
	requests := flag.Int("requests", 1000, "Figure 6 request count")
	flag.Parse()

	if *scaleDiv < 1 {
		fmt.Fprintln(os.Stderr, "shiftbench: -scale-div must be >= 1")
		os.Exit(2)
	}
	if err := bench.PrintAll(os.Stdout, *experiment, *scaleDiv, *requests); err != nil {
		fmt.Fprintln(os.Stderr, "shiftbench:", err)
		os.Exit(1)
	}
}
