// Command shiftbench regenerates the paper's evaluation tables and
// figures (Tables 1–3, Figures 6–9, and the §4.4 ablation).
//
// Usage:
//
//	shiftbench [-experiment all|table1|table2|table3|fig6|fig7|fig8|fig9|ablation]
//	           [-scale-div N] [-requests N] [-workers N] [-tagpipe N] [-selective]
//	           [-engine block|interp] [-cpuprofile FILE] [-memprofile FILE]
//
// -scale-div divides the benchmarks' reference input sizes (1 = the full
// evaluation; larger values run proportionally faster). -requests sets
// the Figure 6 request count (the paper used 1000). -workers caps the
// experiment cells run concurrently (0 = one per CPU; the results are
// identical at any setting). -engine selects the execution engine (the
// default block engine and the reference interpreter produce identical
// results; the flag exists for performance comparison). -tagpipe moves
// the instrumented runs' shadow checking onto N decoupled pipeline
// workers (0 = inline; verdicts are unchanged, throughput is not).
// -selective applies whole-program taint-reachability analysis before
// instrumenting, leaving statically taint-unreachable sites in their
// original encoding (verdict-equivalent; lowers checked-run overhead).
// -cpuprofile and -memprofile write pprof profiles for the performance
// workflow in docs/PERFORMANCE.md.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"

	"shift/internal/bench"
	"shift/internal/machine"
	"shift/internal/tagpipe"
)

func main() {
	experiment := flag.String("experiment", "all", "which experiment to run (all, table1, table2, table3, fig6, fig7, fig8, fig9, ablation)")
	scaleDiv := flag.Int("scale-div", 1, "divide reference input scales by this factor")
	requests := flag.Int("requests", 1000, "Figure 6 request count")
	workers := flag.Int("workers", 0, "max concurrent experiment cells (0 = NumCPU, 1 = serial)")
	tagpipeN := flag.Int("tagpipe", 0, "decoupled tag-pipeline worker count for instrumented runs (0 = inline checking)")
	selective := flag.Bool("selective", false, "instrument only statically taint-reachable sites in instrumented runs")
	engineName := flag.String("engine", "block", "execution engine: block or interp")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file")
	flag.Parse()

	if *scaleDiv < 1 {
		fmt.Fprintln(os.Stderr, "shiftbench: -scale-div must be >= 1")
		os.Exit(2)
	}
	if err := tagpipe.ValidateWorkers(*tagpipeN); err != nil {
		fmt.Fprintln(os.Stderr, "shiftbench:", err)
		os.Exit(2)
	}
	bench.Workers = *workers
	bench.Tagpipe = *tagpipeN
	bench.Selective = *selective
	engine, ok := machine.EngineFromString(*engineName)
	if !ok {
		fmt.Fprintf(os.Stderr, "shiftbench: unknown engine %q (want block or interp)\n", *engineName)
		os.Exit(2)
	}
	bench.Engine = engine

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "shiftbench:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "shiftbench:", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}

	if err := bench.PrintAll(os.Stdout, *experiment, *scaleDiv, *requests); err != nil {
		fmt.Fprintln(os.Stderr, "shiftbench:", err)
		os.Exit(1)
	}
	if engine == machine.EngineBlock {
		caches, blocks := machine.TranslationTotals()
		fmt.Printf("\nblock translation: %d program texts cached, %d basic blocks compiled\n", caches, blocks)
	}

	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "shiftbench:", err)
			os.Exit(1)
		}
		defer f.Close()
		runtime.GC() // report live allocations, not garbage
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "shiftbench:", err)
			os.Exit(1)
		}
	}
}
